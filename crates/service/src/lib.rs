//! # `logdiam-svc` — an incremental connectivity service
//!
//! The subsystem in the workspace that owns *mutable* connectivity state.
//! Every other entry point is one-shot over a static CSR graph;
//! [`ConnectivityService`] instead maintains a component labeling under a
//! stream of batched edge insertions and answers connectivity queries
//! against published, immutable snapshots.
//!
//! Since PR 6 the service is **sharded and pipelined** — three moving
//! parts behind one controller handle (full contract: `ARCHITECTURE.md`):
//!
//! * **A dedicated writer thread** owns the state. [`apply_batch`] only
//!   normalizes the batch, enqueues it on a bounded command channel
//!   ([`SvcParams::command_queue`] — a full channel blocks the caller:
//!   that is the backpressure), and returns an [`EpochTicket`] the caller
//!   can [`wait`](EpochTicket::wait) or [`poll`](EpochTicket::poll).
//!   The writer drains commands in FIFO order, so epoch assignment is
//!   totally ordered however many threads enqueue concurrently.
//! * **A sharded delta overlay** absorbs each batch: the resumable
//!   concurrent union–find ([`logdiam_par::UnionFind`]) is partitioned by
//!   vertex range into [`SvcParams::shard_count`] shards — intra-shard
//!   edges are absorbed with one pool task per shard, cross-shard unions
//!   are buffered per shard and drained by the writer in one pass per
//!   commit. Shard count is a pure performance knob: published labels are
//!   canonical min-vertex representatives, identical for every shard and
//!   thread count.
//! * **Pipelined rebuilds**: when [`SvcParams::rebuild_threshold`]
//!   distinct new edges have accumulated, the commit *folds* them into a
//!   fresh base CSR synchronously (cheap merge, deterministic trigger),
//!   but the full recompute on the [`RebuildBackend`] runs on a
//!   background worker; its labeling swaps in atomically between commits.
//!   Neither queries nor commits ever stall behind a recompute.
//!
//! Queries stay wait-free throughout: every commit publishes an immutable
//! [`Snapshot`] (canonical labels plus a [`Spectrum`] of component
//! statistics) onto a bounded history ring
//! ([`SvcParams::snapshot_history`]); readers clone an `Arc` off the ring
//! and never touch the writer.
//!
//! Label canonicalization makes the service deterministic: for a fixed
//! replay (initial graph + batch sequence from one caller), every epoch's
//! labels are identical at any thread count, for any shard count, and for
//! either rebuild backend.
//!
//! Since PR 7 the service can also be **durable**: opened on a
//! directory ([`ConnectivityService::create`] /
//! [`ConnectivityService::open`]), the writer appends every normalized
//! batch to a CRC32-checksummed write-ahead log *before* applying it and
//! periodically installs atomic epoch snapshots, so a crash — at any
//! point, including mid-append — recovers to a prefix of the committed
//! epochs that is bit-identical to the uninterrupted run. Writer-thread
//! death (a contained panic) is a typed error ([`WriterDead`]) on every
//! ticket and [`flush`](ConnectivityService::flush), never a hang.
//!
//! ```
//! use cc_graph::gen;
//! use logdiam_svc::{ConnectivityService, SvcParams};
//!
//! let svc = ConnectivityService::new(gen::path(10), SvcParams::default());
//! assert!(svc.query_latest(0, 9));
//! let ticket = svc.apply_batch(&[(3, 7), (2, 2)]); // enqueued; loop dropped
//! let epoch = ticket.wait().unwrap();               // block until committed
//! assert!(svc.query(0, 9, epoch).unwrap());
//! assert_eq!(svc.component_of(9), 0);
//! ```
//!
//! [`apply_batch`]: ConnectivityService::apply_batch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod persist;
mod service;
mod shard;
mod snapshot;
mod ticket;
mod wal;
mod writer;

pub use persist::{FsyncPolicy, PersistError};
pub use service::ConnectivityService;
pub use snapshot::{Snapshot, Spectrum};
pub use ticket::EpochTicket;

/// The workspace observability layer, re-exported so service callers can
/// name [`obs::MetricsSnapshot`] / [`obs::Registry`] (returned by
/// [`ConnectivityService::metrics`] / [`ConnectivityService::obs`])
/// without a separate dependency.
pub use logdiam_obs as obs;

/// An undirected edge request: endpoints in either order, self-loops
/// tolerated (and dropped).
pub type Edge = (u32, u32);

/// A monotone version number: epoch `e` is the state after the `e`-th
/// [`ConnectivityService::apply_batch`] commit (epoch 0 is the initial
/// graph). Epochs are assigned by the writer thread in dequeue order.
pub type Epoch = u64;

/// Which full-recompute algorithm a background rebuild runs once the
/// delta overlay exceeds its threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildBackend {
    /// The practical lock-free concurrent union–find
    /// ([`logdiam_par::unionfind::unionfind_cc`]): the fast default.
    UnionFind,
    /// The paper's Theorem-3 EXPAND–MAXLINK algorithm (`faster_cc`) on a
    /// seeded-ARBITRARY simulated CRCW PRAM — orders of magnitude slower
    /// per rebuild, but routes the service's maintenance path through the
    /// reproduction itself. The recompute runs off the commit path, and
    /// the swap asserts partition agreement with the live overlay, so a
    /// diverging simulation aborts loudly instead of corrupting state.
    FasterSim {
        /// Seed for the simulated machine and the algorithm's hash draws.
        seed: u64,
    },
}

/// Tuning knobs for [`ConnectivityService`].
#[derive(Clone, Copy, Debug)]
pub struct SvcParams {
    /// Rebuild backend (default: [`RebuildBackend::UnionFind`]).
    pub backend: RebuildBackend,
    /// Distinct new (not in the base graph, not previously absorbed)
    /// edges the delta overlay may accumulate before a commit folds them
    /// into a fresh base CSR and schedules a background recompute.
    pub rebuild_threshold: usize,
    /// How many recent epoch snapshots stay addressable by
    /// [`ConnectivityService::query`]; older epochs are evicted
    /// ([`EpochError::Evicted`]). At least 1 (the latest snapshot is
    /// always kept).
    pub snapshot_history: usize,
    /// Vertex-range shards the overlay partitions each batch over:
    /// intra-shard absorption runs one pool task per shard; cross-shard
    /// unions are buffered and drained once per commit. Purely a
    /// performance knob — published labels are identical for any value
    /// (default 8).
    pub shard_count: usize,
    /// Capacity of the command channel between handles and the writer
    /// thread. [`ConnectivityService::apply_batch`] returns as soon as
    /// the batch is enqueued; once the writer falls this many commits
    /// behind, further calls block until a slot frees (bounded-memory
    /// backpressure instead of unbounded buffering; default 1024).
    pub command_queue: usize,
    /// When the durable layer fsyncs the write-ahead log (default
    /// [`FsyncPolicy::Always`]). Ignored by memory-only services
    /// ([`ConnectivityService::new`]).
    pub fsync: FsyncPolicy,
    /// Commits between durable epoch snapshots (default 256). A smaller
    /// cadence bounds recovery replay at the cost of snapshot I/O on the
    /// commit path. Ignored by memory-only services.
    pub snapshot_every: u64,
    /// Durable snapshots retained on disk (default 3, minimum 1). Older
    /// snapshots are recovery fallbacks when the newest one is corrupt;
    /// the genesis file is kept forever regardless, so full replay is
    /// always the last resort. Ignored by memory-only services.
    pub snapshots_kept: usize,
}

impl Default for SvcParams {
    fn default() -> Self {
        SvcParams {
            backend: RebuildBackend::UnionFind,
            rebuild_threshold: 4096,
            snapshot_history: 8,
            shard_count: 8,
            command_queue: 1024,
            fsync: FsyncPolicy::Always,
            snapshot_every: 256,
            snapshots_kept: 3,
        }
    }
}

/// Why an epoch-addressed read could not be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochError {
    /// The epoch has not been committed yet.
    Future {
        /// The epoch the caller asked for.
        requested: Epoch,
        /// The newest committed epoch.
        latest: Epoch,
    },
    /// The epoch fell out of the bounded snapshot history.
    Evicted {
        /// The epoch the caller asked for.
        requested: Epoch,
        /// The oldest epoch still retained.
        oldest: Epoch,
    },
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EpochError::Future { requested, latest } => {
                write!(
                    f,
                    "epoch {requested} not yet committed (latest is {latest})"
                )
            }
            EpochError::Evicted { requested, oldest } => {
                write!(
                    f,
                    "epoch {requested} evicted from history (oldest retained is {oldest})"
                )
            }
        }
    }
}

impl std::error::Error for EpochError {}

/// The writer thread died (a panic on the commit path, contained by the
/// service), carrying the panic payload.
///
/// Once the writer is dead the service is read-only: every published
/// snapshot stays queryable, but every outstanding and future
/// [`EpochTicket`] resolves to this error and
/// [`ConnectivityService::flush`] returns it. Nothing blocks forever —
/// the dead writer keeps draining its command channel, poisoning tickets,
/// until the handles drop.
///
/// For durable services the writer treats storage failures (a WAL append
/// or snapshot write that errors) as fatal and panics: fail-stop, so a
/// service that cannot persist a batch never acknowledges it.
#[derive(Clone, Debug)]
pub struct WriterDead {
    payload: String,
}

impl WriterDead {
    pub(crate) fn new(payload: String) -> Self {
        WriterDead { payload }
    }

    /// The panic payload the writer died with (stringified).
    pub fn payload(&self) -> &str {
        &self.payload
    }
}

impl std::fmt::Display for WriterDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service writer thread died: {}", self.payload)
    }
}

impl std::error::Error for WriterDead {}
