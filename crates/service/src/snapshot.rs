//! Published, immutable per-epoch state: labels plus component statistics.

use crate::Epoch;

/// Component-structure statistics for one epoch — the service's
/// observability surface.
///
/// Everything is derived from the epoch's canonical labeling in one O(n)
/// pass at publish time, so reading a spectrum never touches the writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Spectrum {
    /// The epoch this spectrum describes.
    pub epoch: Epoch,
    /// Vertex count.
    pub n: usize,
    /// Edges in the rebuilt base CSR (deltas not included).
    pub base_m: usize,
    /// Distinct delta edges absorbed by the overlay since the last
    /// rebuild (0 right after a rebuild).
    pub delta_edges: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest component (0 on an empty vertex set).
    pub largest_component: usize,
    /// Number of isolated vertices (components of size 1).
    pub isolated_vertices: usize,
    /// Rebuild folds triggered over the service's lifetime (a fold
    /// synchronously merges the deltas into a fresh base CSR; the
    /// recompute it schedules runs on the background worker and is not
    /// observable here — see `ARCHITECTURE.md` on why the deterministic
    /// surface must not depend on worker timing).
    pub rebuilds: u64,
    /// Vertex-range shards the delta overlay partitions batches over.
    pub shards: usize,
    /// Cumulative cross-shard unions drained by commits up to this epoch
    /// (deterministic: counted at first absorption, a pure function of
    /// the replay and the shard geometry).
    pub cross_unions: u64,
}

/// One epoch's published state: canonical min-vertex component labels and
/// the [`Spectrum`] derived from them. Immutable once published; readers
/// hold it through an `Arc` and are therefore never invalidated by later
/// commits.
#[derive(Clone, Debug)]
pub struct Snapshot {
    labels: Vec<u32>,
    spectrum: Spectrum,
}

impl Snapshot {
    /// Seal a labeling into a snapshot, deriving the spectrum.
    pub(crate) fn new(
        epoch: Epoch,
        labels: Vec<u32>,
        base_m: usize,
        delta_edges: usize,
        rebuilds: u64,
        shards: usize,
        cross_unions: u64,
    ) -> Self {
        let n = labels.len();
        let mut size = vec![0u32; n];
        for &l in &labels {
            size[l as usize] += 1;
        }
        let mut components = 0usize;
        let mut largest = 0u32;
        let mut isolated = 0usize;
        for &s in &size {
            if s > 0 {
                components += 1;
                largest = largest.max(s);
                isolated += (s == 1) as usize;
            }
        }
        Snapshot {
            labels,
            spectrum: Spectrum {
                epoch,
                n,
                base_m,
                delta_edges,
                components,
                largest_component: largest as usize,
                isolated_vertices: isolated,
                rebuilds,
                shards,
                cross_unions,
            },
        }
    }

    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> Epoch {
        self.spectrum.epoch
    }

    /// Canonical min-vertex component labels for all vertices.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The component label of `u` at this epoch.
    pub fn component_of(&self, u: u32) -> u32 {
        self.labels[u as usize]
    }

    /// Whether `u` and `v` were connected at this epoch.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Component statistics at this epoch.
    pub fn spectrum(&self) -> Spectrum {
        self.spectrum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_counts_components_sizes_and_isolates() {
        // {0,1,2}, {3}, {4,5} — labels are min-vertex canonical.
        let s = Snapshot::new(7, vec![0, 0, 0, 3, 4, 4], 3, 1, 2, 4, 9);
        let sp = s.spectrum();
        assert_eq!(sp.epoch, 7);
        assert_eq!(sp.n, 6);
        assert_eq!(sp.base_m, 3);
        assert_eq!(sp.delta_edges, 1);
        assert_eq!(sp.components, 3);
        assert_eq!(sp.largest_component, 3);
        assert_eq!(sp.isolated_vertices, 1);
        assert_eq!(sp.rebuilds, 2);
        assert_eq!(sp.shards, 4);
        assert_eq!(sp.cross_unions, 9);
        assert!(s.connected(0, 2));
        assert!(!s.connected(2, 3));
        assert_eq!(s.component_of(5), 4);
    }

    #[test]
    fn empty_snapshot_is_well_defined() {
        let s = Snapshot::new(0, vec![], 0, 0, 0, 1, 0);
        let sp = s.spectrum();
        assert_eq!(sp.components, 0);
        assert_eq!(sp.largest_component, 0);
        assert_eq!(sp.isolated_vertices, 0);
    }
}
