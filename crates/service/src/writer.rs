//! The dedicated writer thread that owns all mutable service state, and
//! the background rebuild worker it pipelines full recomputes onto.
//!
//! # Commit path
//!
//! [`ConnectivityService`](crate::ConnectivityService) is only a
//! controller handle: it enqueues [`Cmd`]s on a bounded command channel
//! and reads published snapshots. The writer thread drains the channel in
//! FIFO order, so **epoch assignment is totally ordered by the writer** —
//! the one invariant the async split must preserve for the per-epoch
//! determinism fingerprints to survive (see `ARCHITECTURE.md`).
//!
//! Per [`Cmd::Apply`] the writer: normalizes the batch against the base
//! CSR and the persistent dedup set, absorbs the surviving edges into the
//! sharded overlay ([`ShardedOverlay::absorb`]), folds the delta list
//! into a fresh base CSR when the rebuild threshold is crossed (the
//! *fold* is synchronous and deterministic; only the *recompute* is
//! pipelined), seals and publishes the epoch's [`Snapshot`], and then —
//! and only then — fulfills the caller's ticket.
//!
//! # Pipelined rebuilds
//!
//! A threshold crossing sends the freshly folded CSR to the rebuild
//! worker and keeps committing. When the worker's labeling comes back,
//! the writer swaps in a new overlay built from those labels plus a
//! replay of the deltas that accumulated meanwhile — an O(n + |delta|)
//! splice between two commits, never a stall across one. A recompute
//! whose base was re-folded while it ran is discarded and the newest fold
//! is resubmitted, so the worker always converges to the current base.
//! The swap cannot change any published label: the retiring overlay and
//! the incoming one describe the same partition, which the writer asserts
//! at swap time (this is also what keeps the
//! [`RebuildBackend::FasterSim`] route honest — a diverging backend
//! aborts instead of silently disagreeing).

use crate::persist::{self, SnapshotFile};
use crate::shard::ShardedOverlay;
use crate::ticket::TicketCell;
use crate::wal::{Wal, WalRecord};
use crate::{Edge, Epoch, FsyncPolicy, RebuildBackend, Snapshot, SvcParams, WriterDead};
use cc_graph::Graph;
use logdiam_obs::{Counter, Event, Histogram, Registry};
use logdiam_par::UnionFind;
use pram_kit::PairSet;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::Instant;

/// Seed for the delta dedup set; fixed so replays are deterministic.
const DELTA_DEDUP_SEED: u64 = 0xD317_A5E7;

/// The published snapshot ring, shared between the writer (publisher) and
/// every handle (readers). Oldest epoch at the front, latest at the back.
pub(crate) type Ring = RwLock<VecDeque<Arc<Snapshot>>>;

/// A command enqueued by the handle, drained by the writer in FIFO order.
pub(crate) enum Cmd {
    /// Commit one (handle-normalized) batch and fulfill the ticket.
    Apply {
        /// Loop-free edges with validated endpoints.
        edges: Vec<Edge>,
        /// Fulfilled with the assigned epoch after the snapshot publishes.
        ticket: Arc<TicketCell>,
        /// When the handle enqueued the command — the writer observes the
        /// dequeue delay into `svc_enqueue_wait_ns` (queueing is the first
        /// stage of the commit pipeline).
        enqueued: Instant,
    },
    /// Rendezvous: reply once every previously enqueued command committed.
    /// A dead writer drops the sender instead, which the handle maps to
    /// [`WriterDead`].
    Flush(mpsc::SyncSender<()>),
    /// Test-only fault injection: panic on the commit path, exercising the
    /// containment machinery exactly as a real commit panic would.
    Crash,
}

/// Writer state shared with the handles: the observability registry plus
/// the two pieces of *load-bearing* synchronization that are **not**
/// metrics. Deliberately *not* part of
/// [`Snapshot`]/[`Spectrum`](crate::Spectrum): everything here depends on
/// rebuild-worker timing, which the deterministic surface must not.
///
/// # Memory-ordering contract (the one place it is documented)
///
/// Everything recorded through [`SharedStats::obs`] — counters,
/// histograms, span timings — uses **relaxed** atomics and is
/// *approximate in ordering, exact in total*: a reader may see a commit's
/// counter bump before its histogram observation (or vice versa), but no
/// increment is ever lost. Nothing may synchronize-with a metric, and no
/// algorithm reads one back.
///
/// [`rebuild_in_flight`](SharedStats::rebuild_in_flight) is the
/// deliberate exception: it is **Acquire/Release and load-bearing**, not
/// a metric. The writer `store(true, Release)`s it after handing a fold
/// to the rebuild worker and `store(false, Release)`s it only once the
/// pipeline is empty, so a handle that observes `false` with `Acquire`
/// sees every overlay swap that made it false. Tests (and callers such as
/// drain loops) rely on exactly that edge; do not demote it to Relaxed.
///
/// [`dead`](SharedStats::dead) is a mutex for the same reason: the first
/// panic's payload must be published once, fully formed, to every handle.
pub(crate) struct SharedStats {
    // --- Load-bearing synchronization (NOT metrics; see above) ---
    /// True between a fold being sent to the rebuild worker and its
    /// (or a successor's) labeling being swapped in. Acquire/Release.
    pub(crate) rebuild_in_flight: AtomicBool,
    /// Set (once) when the writer thread dies; handles fast-fail new
    /// batches against it and `flush` reports it.
    pub(crate) dead: Mutex<Option<WriterDead>>,
    // --- Relaxed, approximate observability ---
    /// The service's metrics registry: every commit-pipeline span,
    /// counter, and event lands here. Exposed as
    /// [`ConnectivityService::obs`](crate::ConnectivityService::obs).
    pub(crate) obs: Registry,
    /// Background recomputes whose labelings were swapped in
    /// (`svc_overlay_swaps_total`).
    pub(crate) overlay_swaps: Counter,
    /// Background recomputes discarded because their base was re-folded
    /// while they ran (`svc_stale_rebuilds_total`).
    pub(crate) stale_rebuilds: Counter,
}

impl SharedStats {
    pub(crate) fn new() -> Self {
        let obs = Registry::new();
        SharedStats {
            rebuild_in_flight: AtomicBool::new(false),
            dead: Mutex::new(None),
            overlay_swaps: obs.counter("svc_overlay_swaps_total"),
            stale_rebuilds: obs.counter("svc_stale_rebuilds_total"),
            obs,
        }
    }
}

/// A fold shipped to the rebuild worker: the new base CSR and the fold
/// generation (= the writer's `rebuilds` counter at fold time).
struct RebuildJob {
    generation: u64,
    base: Arc<Graph>,
}

/// The worker's reply: the recomputed labeling for `generation`'s base,
/// plus how long the backend took (observed into `svc_recompute_ns` by
/// the writer — the worker has no registry handle of its own).
struct RebuildDone {
    generation: u64,
    labels: Vec<u32>,
    recompute: std::time::Duration,
}

/// Pre-registered registry handles for the writer's hot path, so a commit
/// never takes the registry's name-map lock. Histogram names double as
/// span names (a span records into the histogram of the same name); the
/// full catalogue is `docs/obs-schema.md`.
struct ObsHandles {
    enqueue_wait_ns: Histogram,
    dedup_ns: Histogram,
    absorb_intra_ns: Histogram,
    cross_drain_ns: Histogram,
    snapshot_publish_ns: Histogram,
    recompute_ns: Histogram,
    commits: Counter,
    folds: Counter,
    cross_unions: Counter,
    wal_bytes: Counter,
    wal_records: Counter,
    wal_fsyncs: Counter,
    durable_snapshots: Counter,
    replayed_records: Counter,
}

impl ObsHandles {
    fn new(reg: &Registry) -> Self {
        // Pre-register the span-backed histograms too (spans look them up
        // on use), so every service exposes the full metric catalogue of
        // `docs/obs-schema.md` from epoch 0 — zeros, not missing keys.
        for span_hist in [
            "svc_commit_ns",
            "svc_wal_append_ns",
            "svc_fsync_ns",
            "svc_fold_ns",
            "svc_swap_ns",
            "svc_durable_snapshot_ns",
        ] {
            let _ = reg.histogram(span_hist);
        }
        ObsHandles {
            enqueue_wait_ns: reg.histogram("svc_enqueue_wait_ns"),
            dedup_ns: reg.histogram("svc_dedup_ns"),
            absorb_intra_ns: reg.histogram("svc_absorb_ns"),
            cross_drain_ns: reg.histogram("svc_cross_drain_ns"),
            snapshot_publish_ns: reg.histogram("svc_snapshot_publish_ns"),
            recompute_ns: reg.histogram("svc_recompute_ns"),
            commits: reg.counter("svc_commits_total"),
            folds: reg.counter("svc_folds_total"),
            cross_unions: reg.counter("svc_cross_unions_total"),
            wal_bytes: reg.counter("svc_wal_bytes_total"),
            wal_records: reg.counter("svc_wal_records_total"),
            wal_fsyncs: reg.counter("svc_wal_fsyncs_total"),
            durable_snapshots: reg.counter("svc_durable_snapshots_total"),
            replayed_records: reg.counter("svc_replayed_records_total"),
        }
    }
}

/// The durable half of the writer state: the open WAL plus snapshot
/// bookkeeping. `None` for memory-only services.
pub(crate) struct Durable {
    pub(crate) dir: PathBuf,
    pub(crate) wal: Wal,
    /// Commits since the last durable snapshot was installed.
    commits_since_snapshot: u64,
}

impl Durable {
    pub(crate) fn new(dir: PathBuf, wal: Wal) -> Self {
        Durable {
            dir,
            wal,
            commits_since_snapshot: 0,
        }
    }
}

/// The initial state a writer starts from: a fresh graph
/// ([`WriterSeed::fresh`]) or a recovered durable state mid-history.
pub(crate) struct WriterSeed {
    pub(crate) base: Graph,
    pub(crate) delta: Vec<Edge>,
    /// `None` ⇒ compute the initial labeling with the backend (fresh
    /// start or genesis-only recovery).
    pub(crate) labels: Option<Vec<u32>>,
    pub(crate) epoch: Epoch,
    pub(crate) rebuilds: u64,
    pub(crate) cross_unions: u64,
    pub(crate) durable: Option<Durable>,
}

impl WriterSeed {
    pub(crate) fn fresh(initial: Graph) -> Self {
        WriterSeed {
            base: initial,
            delta: Vec::new(),
            labels: None,
            epoch: 0,
            rebuilds: 0,
            cross_unions: 0,
            durable: None,
        }
    }
}

/// Everything the writer thread owns.
pub(crate) struct Writer {
    params: SvcParams,
    base: Arc<Graph>,
    overlay: ShardedOverlay,
    /// Distinct delta edges absorbed since the last fold, arrival order.
    delta: Vec<Edge>,
    /// Exact dedup set over `delta` (reseeded at each fold).
    seen: PairSet,
    epoch: Epoch,
    /// Folds triggered (deterministic: a pure function of the replay).
    rebuilds: u64,
    /// Cross-shard unions drained, cumulative and deterministic (counted
    /// at first absorption, not re-counted by swap replays).
    cross_unions: u64,
    published: Arc<Ring>,
    stats: Arc<SharedStats>,
    rb_tx: mpsc::SyncSender<RebuildJob>,
    rb_rx: mpsc::Receiver<RebuildDone>,
    rb_worker: Option<std::thread::JoinHandle<()>>,
    /// Generation currently on the worker, if any.
    inflight: Option<u64>,
    /// Newest fold waiting for the worker slot (at most one: newer folds
    /// replace it — only the latest base is worth recomputing).
    queued: Option<RebuildJob>,
    /// Durable WAL + snapshot state; `None` for memory-only services.
    durable: Option<Durable>,
    /// Pre-registered handles into `stats.obs` for the commit path.
    obs: ObsHandles,
}

impl Writer {
    /// Build the initial state (the seed epoch published synchronously)
    /// and the rebuild worker, before the writer thread starts. A
    /// recovered seed carries its labels; a fresh one computes them with
    /// the configured backend.
    pub(crate) fn start(
        seed: WriterSeed,
        params: SvcParams,
        published: Arc<Ring>,
        stats: Arc<SharedStats>,
    ) -> Self {
        let labels = seed
            .labels
            .unwrap_or_else(|| run_backend(params.backend, &seed.base));
        let overlay = ShardedOverlay::from_labels(&labels, params.shard_count);
        let base = Arc::new(seed.base);
        // Rebuild the delta dedup set exactly as the original run left it:
        // the stored delta edges are distinct and absent from the (same)
        // folded base, so re-dedup re-inserts each of them.
        let mut seen =
            PairSet::with_capacity(DELTA_DEDUP_SEED ^ seed.rebuilds, params.rebuild_threshold);
        let readded = base.dedup_new_edges(&seed.delta, &mut seen);
        debug_assert_eq!(readded, seed.delta, "recovered delta list not canonical");
        let snapshot = Arc::new(Snapshot::new(
            seed.epoch,
            overlay.labels(),
            base.m(),
            seed.delta.len(),
            seed.rebuilds,
            overlay.shard_count(),
            seed.cross_unions,
        ));
        published
            .write()
            .expect("snapshot ring poisoned")
            .push_back(snapshot);
        let (rb_tx, job_rx) = mpsc::sync_channel::<RebuildJob>(1);
        let (done_tx, rb_rx) = mpsc::sync_channel::<RebuildDone>(1);
        let backend = params.backend;
        let rb_worker = std::thread::Builder::new()
            .name("logdiam-svc-rebuild".into())
            .spawn(move || rebuild_worker(job_rx, done_tx, backend))
            .expect("cannot spawn rebuild worker");
        let obs = ObsHandles::new(&stats.obs);
        Writer {
            obs,
            seen,
            params,
            base,
            overlay,
            delta: seed.delta,
            epoch: seed.epoch,
            rebuilds: seed.rebuilds,
            cross_unions: seed.cross_unions,
            published,
            stats,
            rb_tx,
            rb_rx,
            rb_worker: Some(rb_worker),
            inflight: None,
            queued: None,
            durable: seed.durable,
        }
    }

    /// Replay recovered WAL records through the ordinary commit path
    /// (synchronously, before the writer thread spawns). The records are
    /// already in the log, so nothing is re-appended; if anything was
    /// replayed, one consolidating snapshot is installed at the end so the
    /// next crash does not replay the same tail again.
    pub(crate) fn replay(&mut self, records: &[WalRecord]) {
        /// Progress cadence: one `replay_progress` event per this many
        /// records (plus one final event), so a long recovery is visible
        /// without flooding the ring.
        const PROGRESS_EVERY: usize = 256;
        let total = records.len();
        for (i, rec) in records.iter().enumerate() {
            debug_assert_eq!(rec.epoch, self.epoch + 1, "replay records not dense");
            self.commit(&rec.edges);
            self.obs.replayed_records.inc();
            if (i + 1) % PROGRESS_EVERY == 0 || i + 1 == total {
                self.stats.obs.event(
                    Event::new("replay_progress")
                        .with("replayed", i + 1)
                        .with("total", total)
                        .with("epoch", self.epoch),
                );
            }
        }
        if !records.is_empty() {
            self.snapshot_now();
        }
    }

    /// The writer thread's main loop: drain commands until every handle
    /// has dropped, then shut the rebuild pipeline down and exit. All
    /// commands buffered at handle-drop time are still drained and their
    /// tickets fulfilled (std mpsc delivers queued messages before
    /// reporting disconnection).
    ///
    /// # Panic containment
    ///
    /// Each commit runs under `catch_unwind`. If it panics — a bug, an
    /// injected [`Cmd::Crash`], or a durable-storage failure promoted to
    /// a panic — the writer state is dropped, the panic is recorded in
    /// [`SharedStats::dead`], and the loop keeps draining as a
    /// *tombstone*: every subsequent `Apply` ticket is poisoned and every
    /// `Flush` reply sender dropped, until the channel disconnects. No
    /// enqueuer ever blocks forever on a dead writer — the channel keeps
    /// draining, it just stops committing.
    pub(crate) fn run(self, rx: mpsc::Receiver<Cmd>) {
        let stats = Arc::clone(&self.stats);
        let mut state = Some(self);
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Cmd::Apply {
                    edges,
                    ticket,
                    enqueued,
                } => match state.take() {
                    Some(w) => {
                        let commit = catch_unwind(AssertUnwindSafe(move || {
                            let mut w = w;
                            w.obs.enqueue_wait_ns.observe_duration(enqueued.elapsed());
                            w.poll_rebuild();
                            let span =
                                logdiam_obs::span!(w.stats.obs, "svc_commit_ns", m = edges.len());
                            // Durability first: the batch must be in the
                            // log before any state reflects it.
                            w.wal_append(&edges);
                            let epoch = w.commit(&edges);
                            drop(span.with("epoch", epoch));
                            w.maybe_snapshot();
                            (w, epoch)
                        }));
                        match commit {
                            Ok((w, epoch)) => {
                                ticket.fulfill(epoch);
                                state = Some(w);
                            }
                            Err(payload) => ticket.poison(mark_dead(&stats, payload)),
                        }
                    }
                    None => ticket.poison(dead_error(&stats)),
                },
                Cmd::Flush(done) => {
                    if state.is_some() {
                        let _ = done.send(());
                    }
                    // Dead writer: drop `done`; the handle's recv() error
                    // becomes WriterDead.
                }
                Cmd::Crash => {
                    if let Some(w) = state.take() {
                        let payload = catch_unwind(AssertUnwindSafe(move || {
                            let _own = w; // dropped during the unwind
                            panic!("injected writer crash");
                        }))
                        .expect_err("closure always panics");
                        mark_dead(&stats, payload);
                    }
                }
            }
        }
        if let Some(w) = state {
            w.shutdown();
        }
    }

    /// Clean shutdown: close the job channel, let an in-flight recompute
    /// finish (its result is simply dropped), and join the worker so no
    /// thread outlives the service. Durable state syncs its WAL so a
    /// clean drop loses nothing even under [`FsyncPolicy::Batch`]/`Off`.
    fn shutdown(mut self) {
        if let Some(d) = self.durable.as_mut() {
            if d.wal.unsynced() > 0 {
                let _ = d.wal.sync();
            }
        }
        drop(self.rb_tx);
        drop(self.rb_rx);
        if let Some(worker) = self.rb_worker.take() {
            worker.join().expect("rebuild worker panicked");
        }
    }

    /// Append the dequeued batch to the WAL (as the epoch it is about to
    /// commit) and apply the fsync policy. Storage failures are fatal by
    /// design: a service that cannot persist a batch must not acknowledge
    /// it, so the panic here is contained into [`WriterDead`] and the
    /// batch's ticket is poisoned, not fulfilled.
    fn wal_append(&mut self, edges: &[Edge]) {
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        {
            let _append = self.stats.obs.span("svc_wal_append_ns");
            let before = d.wal.len();
            d.wal
                .append(self.epoch + 1, edges)
                .unwrap_or_else(|e| panic!("WAL append failed: {e}"));
            self.obs.wal_bytes.add(d.wal.len() - before);
            self.obs.wal_records.inc();
        }
        let sync_now = match self.params.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(every) => d.wal.unsynced() >= every,
            FsyncPolicy::Off => false,
        };
        if sync_now {
            let _fsync = self.stats.obs.span("svc_fsync_ns");
            d.wal
                .sync()
                .unwrap_or_else(|e| panic!("WAL fsync failed: {e}"));
            self.obs.wal_fsyncs.inc();
        }
    }

    /// Install a durable snapshot every `snapshot_every` commits.
    fn maybe_snapshot(&mut self) {
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        d.commits_since_snapshot += 1;
        if d.commits_since_snapshot >= self.params.snapshot_every {
            self.snapshot_now();
        }
    }

    /// Serialize the full writer state and install it as
    /// `snap-<epoch>.bin` (temp file + atomic rename), pruning old
    /// snapshots. The WAL is synced first (unless the policy is `Off`) so
    /// the snapshot never names a WAL offset the disk does not have.
    fn snapshot_now(&mut self) {
        let Some(d) = self.durable.as_mut() else {
            return;
        };
        let _snap = self.stats.obs.span("svc_durable_snapshot_ns");
        let fsync = self.params.fsync != FsyncPolicy::Off;
        if fsync && d.wal.unsynced() > 0 {
            d.wal
                .sync()
                .unwrap_or_else(|e| panic!("WAL fsync failed: {e}"));
        }
        let snap = SnapshotFile {
            epoch: self.epoch,
            wal_offset: d.wal.len(),
            rebuilds: self.rebuilds,
            cross_unions: self.cross_unions,
            base_edges: self.base.edges().to_vec(),
            delta: self.delta.clone(),
            labels: self.overlay.labels(),
        };
        persist::write_snapshot(&d.dir, &snap, fsync)
            .unwrap_or_else(|e| panic!("snapshot write failed: {e}"));
        persist::prune_snapshots(&d.dir, self.params.snapshots_kept)
            .unwrap_or_else(|e| panic!("snapshot prune failed: {e}"));
        self.obs.durable_snapshots.inc();
        d.commits_since_snapshot = 0;
    }

    /// Commit one normalized batch: absorb, maybe fold, publish, in that
    /// order. Returns the assigned epoch.
    fn commit(&mut self, edges: &[Edge]) -> Epoch {
        // Every stage of substance inside the `svc_commit_ns` span is
        // individually timed (dedup / absorb / cross-drain / fold /
        // publish, plus WAL append + fsync before this call), so the
        // per-stage sums account for the span's total — `svc_driver
        // --mt` asserts that coverage per row.
        let dedup = Instant::now();
        let fresh = self.base.dedup_new_edges(edges, &mut self.seen);
        self.obs.dedup_ns.observe_duration(dedup.elapsed());
        let cross =
            self.overlay
                .absorb_timed(&fresh, &self.obs.absorb_intra_ns, &self.obs.cross_drain_ns);
        self.cross_unions += cross;
        self.obs.cross_unions.add(cross);
        self.delta.extend_from_slice(&fresh);
        if self.delta.len() >= self.params.rebuild_threshold {
            self.fold();
        }
        self.epoch += 1;
        let publish = Instant::now();
        let snapshot = Arc::new(Snapshot::new(
            self.epoch,
            self.overlay.labels(),
            self.base.m(),
            self.delta.len(),
            self.rebuilds,
            self.overlay.shard_count(),
            self.cross_unions,
        ));
        let mut ring = self.published.write().expect("snapshot ring poisoned");
        ring.push_back(snapshot);
        while ring.len() > self.params.snapshot_history {
            ring.pop_front();
        }
        drop(ring);
        self.obs
            .snapshot_publish_ns
            .observe_duration(publish.elapsed());
        self.obs.commits.inc();
        self.epoch
    }

    /// The synchronous, deterministic half of a rebuild: merge the delta
    /// list into a fresh base CSR, reset the delta segment, and hand the
    /// recompute to the worker (or queue it behind an in-flight one).
    ///
    /// Memory: `from_csr_plus_edges` folds the base's canonical edge
    /// list and the sorted delta as two pre-sorted runs through
    /// `cc_graph::runs::merge_sorted_runs` — the streaming builder's
    /// merge primitive — so the fold's transient footprint is base +
    /// delta + merged output, never an unsorted 2× edge-list copy
    /// (the bound `bench_report`'s `graph_build` rows pin for one-shot
    /// builds carries over to every threshold rebuild here).
    fn fold(&mut self) {
        let _fold = logdiam_obs::span!(self.stats.obs, "svc_fold_ns", delta = self.delta.len());
        self.obs.folds.inc();
        self.base = Arc::new(Graph::from_csr_plus_edges(&self.base, &self.delta));
        self.delta.clear();
        self.rebuilds += 1;
        self.seen = PairSet::with_capacity(
            DELTA_DEDUP_SEED ^ self.rebuilds,
            self.params.rebuild_threshold,
        );
        let job = RebuildJob {
            generation: self.rebuilds,
            base: self.base.clone(),
        };
        self.stats.rebuild_in_flight.store(true, Ordering::Release);
        if self.inflight.is_none() {
            self.inflight = Some(job.generation);
            self.rb_tx.send(job).expect("rebuild worker gone");
        } else {
            self.queued = Some(job);
        }
    }

    /// Apply any finished background recompute. Called between commands;
    /// never blocks.
    fn poll_rebuild(&mut self) {
        while let Ok(done) = self.rb_rx.try_recv() {
            debug_assert_eq!(Some(done.generation), self.inflight);
            self.inflight = None;
            self.obs.recompute_ns.observe_duration(done.recompute);
            if done.generation == self.rebuilds {
                self.swap_overlay(done.labels);
            } else {
                // The base was re-folded while this recompute ran: its
                // labeling describes a stale graph. Discard it.
                self.stats.stale_rebuilds.inc();
                self.stats.obs.event(
                    Event::new("stale_rebuild")
                        .with("generation", done.generation)
                        .with("current", self.rebuilds),
                );
            }
            if let Some(job) = self.queued.take() {
                self.inflight = Some(job.generation);
                self.rb_tx.send(job).expect("rebuild worker gone");
            }
        }
        if self.inflight.is_none() && self.queued.is_none() {
            self.stats.rebuild_in_flight.store(false, Ordering::Release);
        }
    }

    /// Retire the overlay for a fresh one built from the recompute's
    /// labels plus a replay of the deltas absorbed since the fold. Pure
    /// representation change: the partition — and therefore every future
    /// published label — is unchanged, which is asserted.
    fn swap_overlay(&mut self, labels: Vec<u32>) {
        let _swap = self.stats.obs.span("svc_swap_ns");
        let mut next = ShardedOverlay::from_labels(&labels, self.params.shard_count);
        next.absorb(&self.delta);
        assert_eq!(
            next.labels(),
            self.overlay.labels(),
            "background rebuild disagrees with the live overlay partition"
        );
        self.overlay = next;
        self.stats.overlay_swaps.inc();
    }
}

/// Stringify a caught panic payload, record it as the writer's cause of
/// death (first panic wins), and return the error to poison tickets with.
fn mark_dead(stats: &SharedStats, payload: Box<dyn std::any::Any + Send>) -> WriterDead {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "writer panicked with a non-string payload".into());
    let err = WriterDead::new(msg);
    let mut dead = stats.dead.lock().expect("dead flag poisoned");
    if dead.is_none() {
        *dead = Some(err.clone());
    }
    err
}

/// The recorded cause of death (for commands dequeued after the writer
/// already died).
fn dead_error(stats: &SharedStats) -> WriterDead {
    stats
        .dead
        .lock()
        .expect("dead flag poisoned")
        .clone()
        .unwrap_or_else(|| WriterDead::new("writer thread terminated".into()))
}

/// The rebuild worker thread: full recomputes, one at a time, off the
/// commit path. Exits when the writer closes the job channel.
fn rebuild_worker(
    jobs: mpsc::Receiver<RebuildJob>,
    done: mpsc::SyncSender<RebuildDone>,
    backend: RebuildBackend,
) {
    while let Ok(job) = jobs.recv() {
        let started = Instant::now();
        let labels = run_backend(backend, &job.base);
        if done
            .send(RebuildDone {
                generation: job.generation,
                labels,
                recompute: started.elapsed(),
            })
            .is_err()
        {
            return; // writer shut down mid-recompute
        }
    }
}

/// Full recompute with the selected backend; always returns canonical
/// min-vertex labels (the `FasterSim` labeling is canonicalized through
/// [`UnionFind::from_labels`]), so every epoch's published labels are
/// backend- and thread-count-independent.
pub(crate) fn run_backend(backend: RebuildBackend, g: &Graph) -> Vec<u32> {
    match backend {
        RebuildBackend::UnionFind => logdiam_par::unionfind::unionfind_cc(g),
        RebuildBackend::FasterSim { seed } => {
            let mut pram = pram_sim::Pram::new(pram_sim::WritePolicy::ArbitrarySeeded(seed));
            let report = logdiam_cc::theorem3::faster_cc(
                &mut pram,
                g,
                seed,
                &logdiam_cc::theorem3::FasterParams::default(),
            );
            UnionFind::from_labels(&report.run.labels).labels()
        }
    }
}
