//! The dedicated writer thread that owns all mutable service state, and
//! the background rebuild worker it pipelines full recomputes onto.
//!
//! # Commit path
//!
//! [`ConnectivityService`](crate::ConnectivityService) is only a
//! controller handle: it enqueues [`Cmd`]s on a bounded command channel
//! and reads published snapshots. The writer thread drains the channel in
//! FIFO order, so **epoch assignment is totally ordered by the writer** —
//! the one invariant the async split must preserve for the per-epoch
//! determinism fingerprints to survive (see `ARCHITECTURE.md`).
//!
//! Per [`Cmd::Apply`] the writer: normalizes the batch against the base
//! CSR and the persistent dedup set, absorbs the surviving edges into the
//! sharded overlay ([`ShardedOverlay::absorb`]), folds the delta list
//! into a fresh base CSR when the rebuild threshold is crossed (the
//! *fold* is synchronous and deterministic; only the *recompute* is
//! pipelined), seals and publishes the epoch's [`Snapshot`], and then —
//! and only then — fulfills the caller's ticket.
//!
//! # Pipelined rebuilds
//!
//! A threshold crossing sends the freshly folded CSR to the rebuild
//! worker and keeps committing. When the worker's labeling comes back,
//! the writer swaps in a new overlay built from those labels plus a
//! replay of the deltas that accumulated meanwhile — an O(n + |delta|)
//! splice between two commits, never a stall across one. A recompute
//! whose base was re-folded while it ran is discarded and the newest fold
//! is resubmitted, so the worker always converges to the current base.
//! The swap cannot change any published label: the retiring overlay and
//! the incoming one describe the same partition, which the writer asserts
//! at swap time (this is also what keeps the
//! [`RebuildBackend::FasterSim`] route honest — a diverging backend
//! aborts instead of silently disagreeing).

use crate::shard::ShardedOverlay;
use crate::ticket::TicketCell;
use crate::{Edge, Epoch, RebuildBackend, Snapshot, SvcParams};
use cc_graph::Graph;
use logdiam_par::UnionFind;
use pram_kit::PairSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, RwLock};

/// Seed for the delta dedup set; fixed so replays are deterministic.
const DELTA_DEDUP_SEED: u64 = 0xD317_A5E7;

/// The published snapshot ring, shared between the writer (publisher) and
/// every handle (readers). Oldest epoch at the front, latest at the back.
pub(crate) type Ring = RwLock<VecDeque<Arc<Snapshot>>>;

/// A command enqueued by the handle, drained by the writer in FIFO order.
pub(crate) enum Cmd {
    /// Commit one (handle-normalized) batch and fulfill the ticket.
    Apply {
        /// Loop-free edges with validated endpoints.
        edges: Vec<Edge>,
        /// Fulfilled with the assigned epoch after the snapshot publishes.
        ticket: Arc<TicketCell>,
    },
    /// Rendezvous: reply once every previously enqueued command committed.
    Flush(mpsc::SyncSender<()>),
}

/// Non-deterministic observability counters shared with the handles.
/// Deliberately *not* part of [`Snapshot`]/[`Spectrum`](crate::Spectrum):
/// everything here depends on rebuild-worker timing, which the
/// deterministic surface must not.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    /// True between a fold being sent to the rebuild worker and its
    /// (or a successor's) labeling being swapped in.
    pub(crate) rebuild_in_flight: AtomicBool,
    /// Background recomputes whose labelings were swapped in.
    pub(crate) overlay_swaps: AtomicU64,
    /// Background recomputes discarded because their base was re-folded
    /// while they ran.
    pub(crate) stale_rebuilds: AtomicU64,
}

/// A fold shipped to the rebuild worker: the new base CSR and the fold
/// generation (= the writer's `rebuilds` counter at fold time).
struct RebuildJob {
    generation: u64,
    base: Arc<Graph>,
}

/// The worker's reply: the recomputed labeling for `generation`'s base.
struct RebuildDone {
    generation: u64,
    labels: Vec<u32>,
}

/// Everything the writer thread owns.
pub(crate) struct Writer {
    params: SvcParams,
    base: Arc<Graph>,
    overlay: ShardedOverlay,
    /// Distinct delta edges absorbed since the last fold, arrival order.
    delta: Vec<Edge>,
    /// Exact dedup set over `delta` (reseeded at each fold).
    seen: PairSet,
    epoch: Epoch,
    /// Folds triggered (deterministic: a pure function of the replay).
    rebuilds: u64,
    /// Cross-shard unions drained, cumulative and deterministic (counted
    /// at first absorption, not re-counted by swap replays).
    cross_unions: u64,
    published: Arc<Ring>,
    stats: Arc<SharedStats>,
    rb_tx: mpsc::SyncSender<RebuildJob>,
    rb_rx: mpsc::Receiver<RebuildDone>,
    rb_worker: Option<std::thread::JoinHandle<()>>,
    /// Generation currently on the worker, if any.
    inflight: Option<u64>,
    /// Newest fold waiting for the worker slot (at most one: newer folds
    /// replace it — only the latest base is worth recomputing).
    queued: Option<RebuildJob>,
}

impl Writer {
    /// Build the initial state (epoch 0 published synchronously) and the
    /// rebuild worker, before the writer thread starts.
    pub(crate) fn start(
        initial: Graph,
        params: SvcParams,
        published: Arc<Ring>,
        stats: Arc<SharedStats>,
    ) -> Self {
        let labels = run_backend(params.backend, &initial);
        let overlay = ShardedOverlay::from_labels(&labels, params.shard_count);
        let snapshot = Arc::new(Snapshot::new(
            0,
            overlay.labels(),
            initial.m(),
            0,
            0,
            overlay.shard_count(),
            0,
        ));
        published
            .write()
            .expect("snapshot ring poisoned")
            .push_back(snapshot);
        let (rb_tx, job_rx) = mpsc::sync_channel::<RebuildJob>(1);
        let (done_tx, rb_rx) = mpsc::sync_channel::<RebuildDone>(1);
        let backend = params.backend;
        let rb_worker = std::thread::Builder::new()
            .name("logdiam-svc-rebuild".into())
            .spawn(move || rebuild_worker(job_rx, done_tx, backend))
            .expect("cannot spawn rebuild worker");
        Writer {
            seen: PairSet::with_capacity(DELTA_DEDUP_SEED, params.rebuild_threshold),
            params,
            base: Arc::new(initial),
            overlay,
            delta: Vec::new(),
            epoch: 0,
            rebuilds: 0,
            cross_unions: 0,
            published,
            stats,
            rb_tx,
            rb_rx,
            rb_worker: Some(rb_worker),
            inflight: None,
            queued: None,
        }
    }

    /// The writer thread's main loop: drain commands until every handle
    /// has dropped, then shut the rebuild pipeline down and exit. All
    /// commands buffered at handle-drop time are still drained and their
    /// tickets fulfilled (std mpsc delivers queued messages before
    /// reporting disconnection).
    pub(crate) fn run(mut self, rx: mpsc::Receiver<Cmd>) {
        while let Ok(cmd) = rx.recv() {
            self.poll_rebuild();
            match cmd {
                Cmd::Apply { edges, ticket } => {
                    let epoch = self.commit(&edges);
                    ticket.fulfill(epoch);
                }
                Cmd::Flush(done) => {
                    let _ = done.send(());
                }
            }
        }
        // Shutdown: close the job channel, let an in-flight recompute
        // finish (its result is simply dropped), and join the worker so
        // no thread outlives the service.
        drop(self.rb_tx);
        drop(self.rb_rx);
        if let Some(worker) = self.rb_worker.take() {
            worker.join().expect("rebuild worker panicked");
        }
    }

    /// Commit one normalized batch: absorb, maybe fold, publish, in that
    /// order. Returns the assigned epoch.
    fn commit(&mut self, edges: &[Edge]) -> Epoch {
        let fresh = self.base.dedup_new_edges(edges, &mut self.seen);
        self.cross_unions += self.overlay.absorb(&fresh);
        self.delta.extend_from_slice(&fresh);
        if self.delta.len() >= self.params.rebuild_threshold {
            self.fold();
        }
        self.epoch += 1;
        let snapshot = Arc::new(Snapshot::new(
            self.epoch,
            self.overlay.labels(),
            self.base.m(),
            self.delta.len(),
            self.rebuilds,
            self.overlay.shard_count(),
            self.cross_unions,
        ));
        let mut ring = self.published.write().expect("snapshot ring poisoned");
        ring.push_back(snapshot);
        while ring.len() > self.params.snapshot_history {
            ring.pop_front();
        }
        self.epoch
    }

    /// The synchronous, deterministic half of a rebuild: merge the delta
    /// list into a fresh base CSR, reset the delta segment, and hand the
    /// recompute to the worker (or queue it behind an in-flight one).
    fn fold(&mut self) {
        self.base = Arc::new(Graph::from_csr_plus_edges(&self.base, &self.delta));
        self.delta.clear();
        self.rebuilds += 1;
        self.seen = PairSet::with_capacity(
            DELTA_DEDUP_SEED ^ self.rebuilds,
            self.params.rebuild_threshold,
        );
        let job = RebuildJob {
            generation: self.rebuilds,
            base: self.base.clone(),
        };
        self.stats.rebuild_in_flight.store(true, Ordering::Release);
        if self.inflight.is_none() {
            self.inflight = Some(job.generation);
            self.rb_tx.send(job).expect("rebuild worker gone");
        } else {
            self.queued = Some(job);
        }
    }

    /// Apply any finished background recompute. Called between commands;
    /// never blocks.
    fn poll_rebuild(&mut self) {
        while let Ok(done) = self.rb_rx.try_recv() {
            debug_assert_eq!(Some(done.generation), self.inflight);
            self.inflight = None;
            if done.generation == self.rebuilds {
                self.swap_overlay(done.labels);
            } else {
                // The base was re-folded while this recompute ran: its
                // labeling describes a stale graph. Discard it.
                self.stats.stale_rebuilds.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(job) = self.queued.take() {
                self.inflight = Some(job.generation);
                self.rb_tx.send(job).expect("rebuild worker gone");
            }
        }
        if self.inflight.is_none() && self.queued.is_none() {
            self.stats.rebuild_in_flight.store(false, Ordering::Release);
        }
    }

    /// Retire the overlay for a fresh one built from the recompute's
    /// labels plus a replay of the deltas absorbed since the fold. Pure
    /// representation change: the partition — and therefore every future
    /// published label — is unchanged, which is asserted.
    fn swap_overlay(&mut self, labels: Vec<u32>) {
        let mut next = ShardedOverlay::from_labels(&labels, self.params.shard_count);
        next.absorb(&self.delta);
        assert_eq!(
            next.labels(),
            self.overlay.labels(),
            "background rebuild disagrees with the live overlay partition"
        );
        self.overlay = next;
        self.stats.overlay_swaps.fetch_add(1, Ordering::Relaxed);
    }
}

/// The rebuild worker thread: full recomputes, one at a time, off the
/// commit path. Exits when the writer closes the job channel.
fn rebuild_worker(
    jobs: mpsc::Receiver<RebuildJob>,
    done: mpsc::SyncSender<RebuildDone>,
    backend: RebuildBackend,
) {
    while let Ok(job) = jobs.recv() {
        let labels = run_backend(backend, &job.base);
        if done
            .send(RebuildDone {
                generation: job.generation,
                labels,
            })
            .is_err()
        {
            return; // writer shut down mid-recompute
        }
    }
}

/// Full recompute with the selected backend; always returns canonical
/// min-vertex labels (the `FasterSim` labeling is canonicalized through
/// [`UnionFind::from_labels`]), so every epoch's published labels are
/// backend- and thread-count-independent.
pub(crate) fn run_backend(backend: RebuildBackend, g: &Graph) -> Vec<u32> {
    match backend {
        RebuildBackend::UnionFind => logdiam_par::unionfind::unionfind_cc(g),
        RebuildBackend::FasterSim { seed } => {
            let mut pram = pram_sim::Pram::new(pram_sim::WritePolicy::ArbitrarySeeded(seed));
            let report = logdiam_cc::theorem3::faster_cc(
                &mut pram,
                g,
                seed,
                &logdiam_cc::theorem3::FasterParams::default(),
            );
            UnionFind::from_labels(&report.run.labels).labels()
        }
    }
}
