//! Writer-thread panic containment: when the writer dies mid-commit, the
//! service degrades to read-only with typed errors — no hangs, no
//! deadlocks on the full channel, no poisoned query path.

use cc_graph::{gen, GraphBuilder};
use logdiam_svc::{ConnectivityService, FsyncPolicy, SvcParams};
use std::time::Duration;

#[test]
fn dead_writer_errors_tickets_flush_and_new_batches() {
    let svc = ConnectivityService::new(GraphBuilder::new(8).build(), SvcParams::default());
    let before = svc.apply_batch(&[(0, 3)]).wait().unwrap();
    assert_eq!(before, 1);
    svc.inject_writer_panic();
    // A batch enqueued after the crash command: its ticket must resolve
    // to WriterDead (via the tombstone drain), never hang.
    let t = svc.apply_batch(&[(1, 4)]);
    let err = t.wait().unwrap_err();
    assert!(err.payload().contains("injected writer crash"), "{err}");
    // flush errors instead of hanging.
    let err = svc.flush().unwrap_err();
    assert!(err.payload().contains("injected writer crash"));
    // The cause of death is observable on the handle...
    assert!(svc.writer_dead().is_some());
    // ...and a fresh apply_batch fast-fails with a pre-poisoned ticket.
    assert!(svc.apply_batch(&[(2, 5)]).poll().is_err());
    // Queries keep serving the published ring: epoch 1 state intact.
    assert!(svc.query_latest(0, 3));
    assert!(!svc.query_latest(1, 4));
    assert_eq!(svc.epoch(), 1);
    // Drop must not hang or panic (the writer thread exited normally).
}

#[test]
fn commits_before_the_crash_stay_committed() {
    let svc = ConnectivityService::new(GraphBuilder::new(100).build(), SvcParams::default());
    let tickets: Vec<_> = (0..20u32)
        .map(|i| svc.apply_batch(&[(i, i + 50)]))
        .collect();
    svc.inject_writer_panic();
    let after: Vec<_> = (0..5u32).map(|i| svc.apply_batch(&[(i, i + 90)])).collect();
    // FIFO: everything enqueued before the crash committed first.
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.wait().unwrap(), i as u64 + 1);
    }
    for t in &after {
        assert!(t.wait().is_err());
    }
    assert_eq!(svc.epoch(), 20);
}

#[test]
fn dead_writer_never_deadlocks_a_full_channel() {
    // A one-slot channel and a crashed writer: enqueuers must keep
    // draining (tickets poisoned), not block forever.
    let svc = ConnectivityService::new(
        gen::path(10),
        SvcParams {
            command_queue: 1,
            ..SvcParams::default()
        },
    );
    svc.inject_writer_panic();
    let done = std::thread::spawn(move || {
        let mut errs = 0;
        for i in 0..200u32 {
            let t = svc.apply_batch(&[(i % 10, (i + 1) % 10)]);
            if t.wait().is_err() {
                errs += 1;
            }
        }
        errs
    });
    // Generous bound: if the tombstone drain were missing this would
    // block forever on the full channel instead of finishing.
    let mut waited = Duration::ZERO;
    while !done.is_finished() && waited < Duration::from_secs(30) {
        std::thread::sleep(Duration::from_millis(10));
        waited += Duration::from_millis(10);
    }
    assert!(done.is_finished(), "enqueuers deadlocked on a dead writer");
    assert_eq!(done.join().unwrap(), 200);
}

#[test]
fn durable_batches_acked_before_death_survive_reopen() {
    let dir = std::env::temp_dir().join(format!("logdiam_death_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let params = SvcParams {
        fsync: FsyncPolicy::Always,
        ..SvcParams::default()
    };
    {
        let svc = ConnectivityService::create(&dir, gen::path(12), params).unwrap();
        svc.apply_batch(&[(0, 6)]).wait().unwrap();
        svc.apply_batch(&[(3, 11)]).wait().unwrap();
        svc.inject_writer_panic();
        assert!(svc.apply_batch(&[(1, 9)]).wait().is_err());
        // The handle drops with the writer already dead — still clean.
    }
    let svc = ConnectivityService::open(&dir, params).unwrap();
    assert_eq!(svc.epoch(), 2, "both acked batches recovered");
    assert!(svc.query_latest(0, 6));
    assert!(svc.query_latest(3, 11));
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
}
