//! Observability contract of the durable service tier: the WAL/fsync
//! histograms and byte counters on the commit pipeline, and the
//! `replay_progress` events a recovery emits.
//!
//! The in-memory half of the contract (absorb / publish histograms,
//! fold spans, the `stale_rebuild` path) is asserted by the service's
//! unit tests and `proptest_svc`; this file owns everything that needs a
//! directory.

use cc_graph::gen;
use logdiam_svc::{ConnectivityService, FsyncPolicy, SvcParams};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch dir per call (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "logdiam_metrics_{}_{tag}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn params(fsync: FsyncPolicy) -> SvcParams {
    SvcParams {
        fsync,
        rebuild_threshold: 1 << 20,
        snapshot_every: 1 << 20, // no periodic durable snapshots
        ..SvcParams::default()
    }
}

#[test]
fn durable_commits_populate_wal_histograms_and_byte_counters() {
    let dir = scratch("wal_hist");
    let svc =
        ConnectivityService::create(&dir, gen::path(32), params(FsyncPolicy::Always)).unwrap();
    const BATCHES: u64 = 6;
    for i in 0..BATCHES as u32 {
        svc.apply_batch(&[(i, i + 8)]).wait().unwrap();
    }
    let m = svc.metrics();
    m.validate().unwrap();
    assert_eq!(m.counters["svc_wal_records_total"], BATCHES);
    assert_eq!(m.counters["svc_wal_fsyncs_total"], BATCHES); // Always: 1:1
    assert_eq!(m.histograms["svc_wal_append_ns"].count, BATCHES);
    assert_eq!(m.histograms["svc_fsync_ns"].count, BATCHES);
    // Each record: 8-byte frame + 12-byte payload prefix + 8 bytes/edge.
    assert_eq!(m.counters["svc_wal_bytes_total"], BATCHES * (8 + 12 + 8));
    drop(svc);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_fsync_policy_syncs_less_than_always() {
    let dir = scratch("fsync_batch");
    let svc =
        ConnectivityService::create(&dir, gen::path(32), params(FsyncPolicy::Batch(4))).unwrap();
    for i in 0..8u32 {
        svc.apply_batch(&[(i, i + 8)]).wait().unwrap();
    }
    let m = svc.metrics();
    assert_eq!(m.counters["svc_wal_records_total"], 8);
    // Every 4th append syncs: exactly 2 policy-driven fsyncs.
    assert_eq!(m.counters["svc_wal_fsyncs_total"], 2);
    assert_eq!(m.histograms["svc_fsync_ns"].count, 2);
    drop(svc);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_replays_with_progress_events_and_counts_records() {
    let dir = scratch("replay");
    const BATCHES: u32 = 5;
    {
        let svc =
            ConnectivityService::create(&dir, gen::path(32), params(FsyncPolicy::Always)).unwrap();
        for i in 0..BATCHES {
            svc.apply_batch(&[(i, i + 8)]).wait().unwrap();
        }
    } // clean shutdown; snapshot_every is huge, so reopen replays the WAL
    let svc = ConnectivityService::open(&dir, params(FsyncPolicy::Always)).unwrap();
    assert_eq!(svc.epoch(), BATCHES as u64);
    let m = svc.metrics();
    m.validate().unwrap();
    assert_eq!(m.counters["svc_replayed_records_total"], BATCHES as u64);
    // Replayed commits run the ordinary instrumented commit path…
    assert_eq!(m.counters["svc_commits_total"], BATCHES as u64);
    assert_eq!(
        m.histograms["svc_snapshot_publish_ns"].count,
        BATCHES as u64
    );
    // …but are *not* re-appended to the WAL.
    assert_eq!(m.counters["svc_wal_records_total"], 0);
    assert_eq!(m.counters["svc_wal_bytes_total"], 0);
    // Recovery installed one consolidating durable snapshot.
    assert_eq!(m.counters["svc_durable_snapshots_total"], 1);
    assert_eq!(m.histograms["svc_durable_snapshot_ns"].count, 1);
    // The final replay_progress event reports full progress.
    let events = svc.obs().drain_events();
    let progress: Vec<_> = events
        .iter()
        .filter(|e| e.name == "replay_progress")
        .collect();
    assert_eq!(progress.len(), 1, "5 records < 256-cadence → 1 final event");
    assert_eq!(
        progress[0].field("replayed"),
        Some(&logdiam_svc::obs::Value::U64(BATCHES as u64))
    );
    assert_eq!(
        progress[0].field("total"),
        Some(&logdiam_svc::obs::Value::U64(BATCHES as u64))
    );
    drop(svc);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn spans_env_off_disables_span_histograms_but_not_counters() {
    // Toggle via the registry (the env var is read at Registry::new,
    // which other concurrently running tests share the environment with —
    // mutating the process env here would race them).
    let svc = ConnectivityService::new(gen::path(16), SvcParams::default());
    svc.obs().set_spans_enabled(false);
    svc.apply_batch(&[(0, 8)]).wait().unwrap();
    let m = svc.metrics();
    // Span-backed histograms recorded nothing…
    assert_eq!(m.histograms["svc_commit_ns"].count, 0);
    // …while plain counters and directly-timed histograms still did.
    assert_eq!(m.counters["svc_commits_total"], 1);
    assert_eq!(m.histograms["svc_dedup_ns"].count, 1);
    assert_eq!(m.histograms["svc_absorb_ns"].count, 1);
    assert_eq!(m.histograms["svc_snapshot_publish_ns"].count, 1);
    assert!(svc.obs().drain_events().is_empty());
}
