//! Crash-recovery fault injection for the durable service tier.
//!
//! The crash model here is **in-process**: an uninterrupted durable run
//! produces a directory; each scenario copies it and mutilates the copy
//! the way a crash would (truncate the WAL at a batch boundary, tear the
//! final record at every byte offset, flip a checksum byte, zero the
//! file, strand a snapshot beyond the log) before calling
//! [`ConnectivityService::open`]. Every mutilation a real `kill -9` can
//! produce is byte-wise reachable this way. The *out-of-process* model —
//! a child process that `abort()`s mid-stream — lives in the bench
//! crate's `crash_probe` bin and its integration test.
//!
//! The contract proved here is the one the in-memory tier already holds
//! under proptest: recovery equals recompute. A recovered service is at
//! a prefix of the committed epochs, bit-identical (labels *and*
//! spectrum) to the uninterrupted run at that epoch, and continuing the
//! stream from there reproduces the uninterrupted run's states exactly.

use cc_graph::seq::{components, same_partition};
use cc_graph::{gen, Graph, GraphBuilder};
use logdiam_svc::{ConnectivityService, FsyncPolicy, PersistError, SvcParams};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const WAL_HEADER_LEN: u64 = 16;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch dir per call (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "logdiam_recovery_{}_{tag}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Walk the WAL's length-prefixed frames (trusting the length fields —
/// this parses a file the test itself wrote) and return the byte offset
/// one past each record, starting with the header end. `ends[k]` is
/// therefore the exact file length after `k` batches were appended.
fn wal_record_ends(dir: &Path) -> Vec<u64> {
    let bytes = std::fs::read(dir.join("wal.bin")).unwrap();
    let mut ends = vec![WAL_HEADER_LEN];
    let mut at = WAL_HEADER_LEN as usize;
    while bytes.len().saturating_sub(at) >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 8 + len;
        if end > bytes.len() {
            break;
        }
        at = end;
        ends.push(at as u64);
    }
    ends
}

fn truncate_wal(dir: &Path, len: u64) {
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join("wal.bin"))
        .unwrap();
    f.set_len(len).unwrap();
}

/// An uninterrupted durable run over `batches`, returning its directory
/// plus the labels and spectrum at every epoch (0..=batches).
struct CleanRun {
    dir: PathBuf,
    per_epoch_labels: Vec<Vec<u32>>,
    per_epoch_spectrum: Vec<logdiam_svc::Spectrum>,
}

fn clean_run(initial: &Graph, batches: &[&[(u32, u32)]], params: SvcParams, tag: &str) -> CleanRun {
    let dir = scratch(tag);
    let svc = ConnectivityService::create(&dir, initial.clone(), params).unwrap();
    for b in batches {
        svc.apply_batch(b).wait().unwrap();
    }
    let mut per_epoch_labels = Vec::new();
    let mut per_epoch_spectrum = Vec::new();
    for e in 0..=batches.len() as u64 {
        let snap = svc.snapshot(e).expect("history retains every epoch");
        per_epoch_labels.push(snap.labels().to_vec());
        per_epoch_spectrum.push(snap.spectrum());
    }
    CleanRun {
        dir,
        per_epoch_labels,
        per_epoch_spectrum,
    }
}

fn params_for(n: usize, batches: usize, snapshot_every: u64) -> SvcParams {
    SvcParams {
        rebuild_threshold: (n / 3).max(4),
        snapshot_history: batches + 2,
        shard_count: 3,
        // In-process crash model: fsync only moves OS buffers to disk,
        // which file copies never observe — Off keeps the suite fast
        // with identical byte-level behavior.
        fsync: FsyncPolicy::Off,
        snapshot_every,
        snapshots_kept: 2,
        ..SvcParams::default()
    }
}

/// The tentpole contract: crash after ANY prefix of commits, reopen,
/// and the service is bit-identical to the uninterrupted run at that
/// epoch — then replaying the rest of the stream converges to the same
/// final state as never having crashed.
fn check_prefix_crash_recovery(n: usize, chunk: usize, snapshot_every: u64, seed: u64) {
    let initial = gen::gnm(n, n, seed);
    let stream = gen::gnm(n, 2 * n, seed ^ 0x5eed);
    let batches: Vec<&[(u32, u32)]> = stream.edges().chunks(chunk).collect();
    let params = params_for(n, batches.len(), snapshot_every);
    let clean = clean_run(&initial, &batches, params, "prefix_clean");
    let ends = wal_record_ends(&clean.dir);
    assert_eq!(ends.len(), batches.len() + 1, "one WAL record per commit");
    let union = Graph::from_csr_plus_edges(&initial, stream.edges());
    let truth = components(&union);
    for k in 0..=batches.len() {
        let dir = scratch("prefix_crash");
        copy_dir(&clean.dir, &dir);
        // The crash point: batch k durable, batch k+1 never appended. A
        // snapshot from an epoch past k could not have existed on disk at
        // that moment, so drop those to model the crash faithfully (the
        // inconsistent-disk variants get their own tests below).
        truncate_wal(&dir, ends[k]);
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let epoch = path
                .file_name()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("snap-"))
                .and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok());
            if epoch.is_some_and(|e| e > k as u64) {
                std::fs::remove_file(path).unwrap();
            }
        }
        let svc = ConnectivityService::open(&dir, params).unwrap();
        assert_eq!(svc.epoch(), k as u64, "recovered to the wrong epoch");
        assert_eq!(
            svc.latest().labels(),
            &clean.per_epoch_labels[k][..],
            "recovered labels differ from the uninterrupted run at epoch {k}"
        );
        assert_eq!(
            svc.spectrum(),
            clean.per_epoch_spectrum[k],
            "recovered spectrum differs at epoch {k}"
        );
        // Continue the stream: every subsequent epoch must reproduce the
        // uninterrupted run bit-for-bit (same dedup, folds, labels).
        for b in &batches[k..] {
            let e = svc.apply_batch(b).wait().unwrap();
            assert_eq!(
                svc.snapshot(e).unwrap().labels(),
                &clean.per_epoch_labels[e as usize][..],
                "post-recovery epoch {e} diverged (crashed at {k})"
            );
        }
        assert_eq!(
            svc.spectrum(),
            *clean.per_epoch_spectrum.last().unwrap(),
            "final spectrum diverged after recovery at {k}"
        );
        assert!(same_partition(svc.latest().labels(), &truth));
        drop(svc);
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&clean.dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Random graphs, random batch splits, random snapshot cadence; kill
    /// after every prefix of commits.
    #[test]
    fn prefix_crash_recovers_bit_identical_state(
        n in 30usize..90,
        chunk in 5usize..19,
        snapshot_every in 1u64..6,
        seed in 0u64..1000,
    ) {
        check_prefix_crash_recovery(n, chunk, snapshot_every, seed);
    }
}

/// Torn tail: truncate at EVERY byte offset inside the final record.
/// Each one must recover to the penultimate epoch without panicking.
#[test]
fn torn_final_record_recovers_at_every_byte_offset() {
    let initial = gen::path(40);
    let stream = gen::gnm(40, 60, 3);
    let batches: Vec<&[(u32, u32)]> = stream.edges().chunks(11).collect();
    let params = params_for(40, batches.len(), 2);
    let clean = clean_run(&initial, &batches, params, "torn_clean");
    let ends = wal_record_ends(&clean.dir);
    let (penultimate, full) = (ends[ends.len() - 2], ends[ends.len() - 1]);
    let k = batches.len() - 1;
    for cut in penultimate..full {
        let dir = scratch("torn");
        copy_dir(&clean.dir, &dir);
        truncate_wal(&dir, cut);
        let svc = ConnectivityService::open(&dir, params).unwrap();
        assert_eq!(svc.epoch(), k as u64, "torn tail at byte {cut}");
        assert_eq!(svc.latest().labels(), &clean.per_epoch_labels[k][..]);
        drop(svc);
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&clean.dir);
}

/// A flipped checksum byte mid-log invalidates that record and everything
/// after it; recovery keeps the longest clean prefix.
#[test]
fn flipped_checksum_byte_rolls_back_to_last_valid_record() {
    let initial = gen::path(30);
    let stream = gen::gnm(30, 60, 7);
    let batches: Vec<&[(u32, u32)]> = stream.edges().chunks(9).collect();
    assert!(batches.len() >= 4);
    // Snapshot cadence larger than the stream: recovery must come from
    // genesis + replay, so the corruption point alone decides the epoch.
    let params = params_for(30, batches.len(), 1000);
    let clean = clean_run(&initial, &batches, params, "crc_clean");
    let ends = wal_record_ends(&clean.dir);
    let corrupt_record = 2; // flip the CRC of the third record
    let dir = scratch("crc_flip");
    copy_dir(&clean.dir, &dir);
    {
        let path = dir.join("wal.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let crc_at = ends[corrupt_record] as usize + 4; // [len u32][crc u32]
        bytes[crc_at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
    }
    let svc = ConnectivityService::open(&dir, params).unwrap();
    assert_eq!(svc.epoch(), corrupt_record as u64);
    assert_eq!(
        svc.latest().labels(),
        &clean.per_epoch_labels[corrupt_record][..]
    );
    drop(svc);
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(&clean.dir);
}

/// A zero-length WAL (crash before the header ever hit disk, or the file
/// destroyed) must fall back to the newest snapshot, reset the log, and
/// keep going — including across a SECOND restart, whose WAL now starts
/// above epoch 1.
#[test]
fn zero_length_wal_falls_back_to_newest_snapshot_and_log_restarts() {
    let initial = gen::path(25);
    let stream = gen::gnm(25, 50, 13);
    let batches: Vec<&[(u32, u32)]> = stream.edges().chunks(7).collect();
    let params = params_for(25, batches.len() + 4, 2); // snapshot every 2 commits
    let clean = clean_run(&initial, &batches, params, "zero_clean");
    // Newest durable snapshot epoch: the largest multiple of 2 ≤ batches.
    let snap_epoch = (batches.len() as u64 / 2) * 2;
    let dir = scratch("zero_wal");
    copy_dir(&clean.dir, &dir);
    std::fs::write(dir.join("wal.bin"), b"").unwrap();
    {
        let svc = ConnectivityService::open(&dir, params).unwrap();
        assert_eq!(svc.epoch(), snap_epoch);
        assert_eq!(
            svc.latest().labels(),
            &clean.per_epoch_labels[snap_epoch as usize][..]
        );
        // The log was reset: new commits append starting at snap_epoch+1.
        for b in &batches[snap_epoch as usize..] {
            svc.apply_batch(b).wait().unwrap();
        }
        assert_eq!(
            svc.latest().labels(),
            &clean.per_epoch_labels.last().unwrap()[..]
        );
    }
    // Second restart: the WAL's first record epoch is snap_epoch+1 ≠ 1,
    // which recovery must handle (snapshot + non-genesis-anchored log).
    let svc = ConnectivityService::open(&dir, params).unwrap();
    assert_eq!(svc.epoch(), batches.len() as u64);
    assert_eq!(
        svc.latest().labels(),
        &clean.per_epoch_labels.last().unwrap()[..]
    );
    drop(svc);
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(&clean.dir);
}

/// A snapshot from a newer epoch than the surviving WAL covers must be
/// skipped — recovery falls back to an older snapshot or full replay,
/// never trusting unprovable state.
#[test]
fn snapshot_newer_than_wal_coverage_is_skipped() {
    let initial = gen::path(30);
    let stream = gen::gnm(30, 60, 23);
    let batches: Vec<&[(u32, u32)]> = stream.edges().chunks(8).collect();
    assert!(batches.len() >= 6);
    let params = SvcParams {
        snapshot_every: 1, // a durable snapshot at every epoch
        snapshots_kept: 3,
        ..params_for(30, batches.len(), 1)
    };
    let clean = clean_run(&initial, &batches, params, "newer_clean");
    let ends = wal_record_ends(&clean.dir);
    // Keep only `keep` batches of log; snapshots at later epochs survive
    // on disk but are unprovable.
    let keep = batches.len() - 3;
    let dir = scratch("newer_snap");
    copy_dir(&clean.dir, &dir);
    truncate_wal(&dir, ends[keep]);
    let svc = ConnectivityService::open(&dir, params).unwrap();
    assert_eq!(
        svc.epoch(),
        keep as u64,
        "must land on WAL coverage, not the newer snapshot"
    );
    assert_eq!(svc.latest().labels(), &clean.per_epoch_labels[keep][..]);
    drop(svc);
    let _ = std::fs::remove_dir_all(dir);

    // Same cut with every snapshot corrupted: recovery's last resort is
    // genesis + full replay of the surviving log.
    let dir = scratch("all_snaps_bad");
    copy_dir(&clean.dir, &dir);
    truncate_wal(&dir, ends[keep]);
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path
            .file_name()
            .and_then(|s| s.to_str())
            .is_some_and(|s| s.starts_with("snap-"))
        {
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x55;
            std::fs::write(&path, &bytes).unwrap();
        }
    }
    let svc = ConnectivityService::open(&dir, params).unwrap();
    assert_eq!(svc.epoch(), keep as u64);
    assert_eq!(svc.latest().labels(), &clean.per_epoch_labels[keep][..]);
    drop(svc);
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(&clean.dir);
}

/// Unrecoverable states must be loud, typed errors — not panics, not
/// silently empty services.
#[test]
fn unrecoverable_directories_error_cleanly() {
    // No genesis at all.
    let dir = scratch("no_genesis");
    match ConnectivityService::open(&dir, SvcParams::default()) {
        Err(PersistError::Io(_)) => {}
        other => panic!("expected Io error, got {:?}", other.map(|_| ())),
    }
    // Corrupt genesis: the vertex count itself is unknowable.
    let dir2 = scratch("bad_genesis");
    let svc = ConnectivityService::create(&dir2, gen::path(4), SvcParams::default()).unwrap();
    drop(svc);
    std::fs::write(dir2.join("genesis.bin"), b"LDIAMGENxxxx").unwrap();
    match ConnectivityService::open(&dir2, SvcParams::default()) {
        Err(PersistError::Corrupt(_)) => {}
        other => panic!("expected Corrupt error, got {:?}", other.map(|_| ())),
    }
    // Creating twice in one dir is refused, not silently overwritten.
    let dir3 = scratch("double_create");
    let svc = ConnectivityService::create(&dir3, gen::path(4), SvcParams::default()).unwrap();
    drop(svc);
    assert!(matches!(
        ConnectivityService::create(&dir3, gen::path(4), SvcParams::default()),
        Err(PersistError::Corrupt(_))
    ));
    for d in [dir, dir2, dir3] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Durable acknowledgment contract under `FsyncPolicy::Always`: a batch
/// whose ticket was fulfilled survives a clean or dirty restart (here:
/// reopen without dropping cleanly is approximated by copying the live
/// dir — the bench crate's crash probe does the real `abort()` version).
#[test]
fn fsync_always_roundtrip_with_clean_reopen() {
    let dir = scratch("always");
    let params = SvcParams {
        fsync: FsyncPolicy::Always,
        snapshot_every: 4,
        ..SvcParams::default()
    };
    let g = gen::gnm(50, 80, 31);
    {
        let svc = ConnectivityService::create(&dir, GraphBuilder::new(50).build(), params).unwrap();
        for chunk in g.edges().chunks(10) {
            svc.apply_batch(chunk).wait().unwrap();
        }
    }
    let svc = ConnectivityService::open(&dir, params).unwrap();
    assert!(same_partition(svc.latest().labels(), &components(&g)));
    drop(svc);
    let _ = std::fs::remove_dir_all(dir);
}
