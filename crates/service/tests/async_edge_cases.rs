//! Edge cases of the async writer split: handle drop with commands in
//! flight, tickets outliving their snapshots, concurrent enqueuers, and
//! the pipelined-rebuild swap.

use cc_graph::seq::{components, same_partition};
use cc_graph::{gen, Graph, GraphBuilder};
use logdiam_svc::{ConnectivityService, EpochError, SvcParams};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Spin until `cond` holds or a generous cap elapses (background rebuild
/// completion is timing-dependent; its *effects* are not).
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn dropping_the_handle_mid_commit_drains_and_fulfills_every_ticket() {
    let g = gen::gnm(500, 900, 3);
    let svc = ConnectivityService::new(
        GraphBuilder::new(g.n()).build(),
        SvcParams {
            rebuild_threshold: 64, // several folds happen mid-drain
            ..SvcParams::default()
        },
    );
    // Enqueue the whole stream without waiting, then drop the handle
    // while the writer is still chewing through the queue.
    let tickets: Vec<_> = g.edges().chunks(17).map(|c| svc.apply_batch(c)).collect();
    let expected_epochs = tickets.len() as u64;
    drop(svc);
    // Drop joins the writer, which drains every buffered command first:
    // all tickets are fulfilled, in FIFO epoch order, with no hang.
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(
            t.poll().unwrap(),
            Some(i as u64 + 1),
            "ticket {i} not fulfilled"
        );
    }
    assert_eq!(
        tickets.last().unwrap().poll().unwrap(),
        Some(expected_epochs)
    );
}

#[test]
fn ticket_awaited_after_its_snapshot_was_evicted_still_resolves() {
    let svc = ConnectivityService::new(
        gen::path(6),
        SvcParams {
            snapshot_history: 1, // only the latest epoch is retained
            ..SvcParams::default()
        },
    );
    let first = svc.apply_batch(&[(0, 2)]);
    let tickets: Vec<_> = (0..8).map(|_| svc.apply_batch(&[])).collect();
    svc.flush().unwrap();
    // The first epoch fell off the ring long ago; its ticket still
    // resolves to the epoch number — the ticket is a commit receipt, not
    // a snapshot reference.
    assert_eq!(first.wait().unwrap(), 1);
    assert!(matches!(
        svc.snapshot(1),
        Err(EpochError::Evicted {
            requested: 1,
            oldest: 9
        })
    ));
    // The labeling the evicted epoch introduced is still visible at the
    // retained latest epoch.
    assert!(svc.query_latest(0, 2));
    assert_eq!(tickets.last().unwrap().wait().unwrap(), 9);
}

#[test]
fn tiny_command_queue_applies_backpressure_without_deadlock() {
    let g = gen::path(300);
    let svc = ConnectivityService::new(
        GraphBuilder::new(g.n()).build(),
        SvcParams {
            command_queue: 1, // every enqueue races the writer's drain
            rebuild_threshold: 32,
            ..SvcParams::default()
        },
    );
    let tickets: Vec<_> = g.edges().chunks(7).map(|c| svc.apply_batch(c)).collect();
    svc.flush().unwrap();
    assert_eq!(svc.epoch(), tickets.len() as u64);
    assert!(same_partition(svc.latest().labels(), &components(&g)));
}

#[test]
fn pipelined_rebuild_swap_lands_without_changing_labels() {
    let g = gen::gnm(800, 1600, 11);
    let svc = ConnectivityService::new(
        GraphBuilder::new(g.n()).build(),
        SvcParams {
            rebuild_threshold: 200,
            ..SvcParams::default()
        },
    );
    for chunk in g.edges().chunks(43) {
        svc.apply_batch(chunk).wait().unwrap();
    }
    assert!(svc.spectrum().rebuilds >= 1);
    let before = svc.latest().labels().to_vec();
    // The background recompute eventually swaps in (an empty commit gives
    // the writer a turn to poll its result channel); the swap is a pure
    // representation change, so the published labels cannot move.
    assert!(
        eventually(|| {
            svc.apply_batch(&[]).wait().unwrap();
            !svc.rebuild_in_flight()
        }),
        "background rebuild never completed"
    );
    assert!(svc.overlay_swaps() >= 1);
    svc.apply_batch(&[]).wait().unwrap();
    assert_eq!(svc.latest().labels(), &before[..]);
    assert!(same_partition(&before, &components(&g)));
}

/// Concurrent enqueuers: every caller's tickets resolve in its own
/// enqueue order, the writer serializes epochs densely, and *every
/// retained epoch* equals a one-shot recompute on exactly the batches
/// committed up to it (reconstructed from the ticket→epoch mapping).
fn check_concurrent_callers(n: usize, writers: usize, chunk: usize, seed: u64) {
    let g = gen::gnm(n, 3 * n, seed);
    let total_batches: usize = g.edges().chunks(chunk).count();
    let svc = ConnectivityService::new(
        GraphBuilder::new(g.n()).build(),
        SvcParams {
            rebuild_threshold: (n / 2).max(8),   // rebuilds fire mid-replay
            snapshot_history: total_batches + 1, // retain every epoch
            shard_count: 3,
            ..SvcParams::default()
        },
    );
    // Deal batches round-robin to the writer threads; each records the
    // epoch its batches landed at.
    let mut per_writer: Vec<Vec<&[(u32, u32)]>> = vec![Vec::new(); writers];
    for (i, c) in g.edges().chunks(chunk).enumerate() {
        per_writer[i % writers].push(c);
    }
    let mut epoch_to_batch: Vec<(u64, &[(u32, u32)])> = std::thread::scope(|s| {
        let handles: Vec<_> = per_writer
            .iter()
            .map(|batches| {
                let svc = &svc;
                s.spawn(move || {
                    let mut committed = Vec::new();
                    let mut last = 0u64;
                    for &b in batches {
                        let epoch = svc.apply_batch(b).wait().unwrap();
                        assert!(epoch > last, "a caller's epochs must be monotone");
                        last = epoch;
                        committed.push((epoch, b));
                    }
                    committed
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    epoch_to_batch.sort_unstable_by_key(|&(e, _)| e);
    // Dense epochs 1..=batches: exactly one commit per apply_batch call.
    let epochs: Vec<u64> = epoch_to_batch.iter().map(|&(e, _)| e).collect();
    assert_eq!(epochs, (1..=total_batches as u64).collect::<Vec<_>>());
    // One-shot recompute per epoch: each retained snapshot must equal
    // sequential ground truth on the batches committed up to it.
    let mut acc: Vec<(u32, u32)> = Vec::new();
    for &(epoch, batch) in &epoch_to_batch {
        acc.extend_from_slice(batch);
        let union = Graph::from_csr_plus_edges(&GraphBuilder::new(n).build(), &acc);
        let snap = svc.snapshot(epoch).expect("every epoch retained");
        assert!(
            same_partition(snap.labels(), &components(&union)),
            "epoch {epoch} diverged from one-shot recompute"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random interleavings of concurrent `apply_batch` callers against a
    /// one-shot recompute at every committed epoch.
    #[test]
    fn concurrent_callers_match_one_shot_recompute_per_epoch(
        n in 40usize..160,
        writers in 2usize..5,
        chunk in 3usize..23,
        seed in 0u64..1000,
    ) {
        check_concurrent_callers(n, writers, chunk, seed);
    }
}
