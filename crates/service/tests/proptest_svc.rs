//! Property tests: the service's maintained labeling is always
//! partition-equal to a one-shot recompute on the accumulated graph.
//!
//! The generator draws a random initial graph, a random edge stream
//! (including out-of-stream duplicate edges and self-loops), and a random
//! interleaving of `apply_batch` calls (batch boundaries, interposed
//! empty batches, re-sent batches) with a small rebuild threshold so both
//! the overlay path and the fold-and-rebuild path are exercised; after
//! every commit the published partition must equal sequential ground
//! truth on the union graph so far.

use cc_graph::seq::{components, same_partition};
use cc_graph::{gen, Graph, GraphBuilder};
use logdiam_svc::{ConnectivityService, RebuildBackend, SvcParams};
use proptest::prelude::*;

/// A replay scenario: initial graph, edge stream, interleaving choices.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    initial: Vec<(u32, u32)>,
    stream: Vec<(u32, u32)>,
    batch: usize,
    rebuild_threshold: usize,
    /// Send every k-th batch twice (duplicate-edge case across batches).
    resend_every: usize,
    /// Interpose an empty batch every k-th batch.
    empty_every: usize,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        8usize..120,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..120),
        // Stream pairs may repeat initial edges and contain loops: the
        // service must drop both.
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..160),
        1usize..24,
        1usize..32,
        any::<u64>(),
    )
        .prop_map(|(n, initial, stream, batch, rebuild_threshold, seed)| {
            let nn = n as u32;
            let clamp = |pairs: Vec<(u32, u32)>| -> Vec<(u32, u32)> {
                pairs.into_iter().map(|(u, v)| (u % nn, v % nn)).collect()
            };
            let mut stream = clamp(stream);
            // Deterministically sprinkle a self-loop into the stream.
            if !stream.is_empty() {
                let i = (seed % stream.len() as u64) as usize;
                let v = stream[i].0;
                stream[i] = (v, v);
            }
            Scenario {
                n,
                initial: clamp(initial),
                stream,
                batch,
                rebuild_threshold,
                resend_every: 2 + (seed % 3) as usize,
                empty_every: 2 + (seed % 2) as usize,
            }
        })
}

fn initial_graph(s: &Scenario) -> Graph {
    let mut b = GraphBuilder::new(s.n);
    for &(u, v) in &s.initial {
        b.add_edge(u, v);
    }
    b.build()
}

/// Run a scenario; after every batch, compare the service partition to a
/// one-shot recompute on the union of everything applied so far.
fn check_replay(s: &Scenario, backend: RebuildBackend) {
    let initial = initial_graph(s);
    let svc = ConnectivityService::new(
        initial.clone(),
        SvcParams {
            backend,
            rebuild_threshold: s.rebuild_threshold,
            snapshot_history: 4,
            // Prime-ish shard count so cross-shard buffering is exercised
            // on every scenario size.
            shard_count: 3,
            ..SvcParams::default()
        },
    );
    let mut applied: Vec<(u32, u32)> = Vec::new();
    for (i, chunk) in s.stream.chunks(s.batch.max(1)).enumerate() {
        if i % s.empty_every == 0 {
            svc.apply_batch(&[]).wait().unwrap();
        }
        svc.apply_batch(chunk).wait().unwrap();
        if i % s.resend_every == 0 {
            svc.apply_batch(chunk).wait().unwrap(); // exact duplicates: must be a no-op
        }
        applied.extend_from_slice(chunk);
        let union = Graph::from_csr_plus_edges(&initial, &applied);
        let truth = components(&union);
        let snap = svc.latest();
        assert!(
            same_partition(snap.labels(), &truth),
            "partition diverged after batch {i} (epoch {})",
            snap.epoch()
        );
        // component_of is the same canonical labeling queries see.
        for v in 0..s.n as u32 {
            assert_eq!(svc.component_of(v), snap.labels()[v as usize]);
        }
    }
    // Final cross-check: every pairwise query on a vertex sample agrees
    // with ground truth on the accumulated graph.
    let union = Graph::from_csr_plus_edges(&initial, &applied);
    let truth = components(&union);
    for u in (0..s.n as u32).step_by(7) {
        for v in (0..s.n as u32).step_by(11) {
            assert_eq!(
                svc.query_latest(u, v),
                truth[u as usize] == truth[v as usize]
            );
        }
    }
    // Every committed workload leaves the commit-pipeline histograms
    // populated and internally consistent (the metrics() contract).
    let m = svc.metrics();
    m.validate().unwrap();
    let commits = m.counters["svc_commits_total"];
    assert!(commits >= s.stream.chunks(s.batch.max(1)).count() as u64);
    // Publish and enqueue-wait are observed once per commit; absorb and
    // cross-drain only when the batch had surviving fresh edges.
    assert_eq!(m.histograms["svc_snapshot_publish_ns"].count, commits);
    assert_eq!(m.histograms["svc_enqueue_wait_ns"].count, commits);
    let absorbs = m.histograms["svc_absorb_ns"].count;
    assert_eq!(m.histograms["svc_cross_drain_ns"].count, absorbs);
    assert!(absorbs <= commits);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// The workhorse: random interleavings against the practical backend.
    #[test]
    fn replay_equals_one_shot_unionfind(s in arb_scenario()) {
        check_replay(&s, RebuildBackend::UnionFind);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// A thinner sweep through the simulated Theorem-3 rebuild backend
    /// (each rebuild is a full PRAM simulation, so fewer cases).
    #[test]
    fn replay_equals_one_shot_faster_sim(s in arb_scenario(), seed in any::<u64>()) {
        check_replay(&s, RebuildBackend::FasterSim { seed });
    }
}

/// Structured family replays: generator edges streamed in order onto an
/// empty base — rebuilds fire many times and the final state must be the
/// full family graph's partition.
#[test]
fn family_streams_from_empty_base() {
    for g in [
        gen::path(300),
        gen::grid(12, 25),
        gen::union_all(&[gen::complete(9), gen::star(40), gen::cycle(17)]),
        gen::preferential_attachment(200, 3, 5),
    ] {
        let svc = ConnectivityService::new(
            GraphBuilder::new(g.n()).build(),
            SvcParams {
                rebuild_threshold: 64,
                ..SvcParams::default()
            },
        );
        for chunk in g.edges().chunks(23) {
            svc.apply_batch(chunk).wait().unwrap();
        }
        assert!(same_partition(svc.latest().labels(), &components(&g)));
        assert!(svc.spectrum().rebuilds >= 1, "rebuild path not exercised");
    }
}
