//! Structured telemetry events and the bounded, striped event ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Ring stripes: recording threads are spread over independent mutexes
/// so event pushes from different threads rarely contend.
const STRIPES: usize = 16;

/// Events retained per stripe; the oldest in a full stripe is dropped
/// (and counted) so recording is always bounded-memory and non-blocking.
const STRIPE_CAP: usize = 4096;

/// A typed field value on an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Free-form text.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::U64(v as u64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v:.3}")
                } else {
                    "null".to_string()
                }
            }
            Value::Str(s) => format!("\"{}\"", escape(s)),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What kind of record an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point-in-time record ([`crate::Registry::event`]).
    Point,
    /// A completed span: duration plus its nesting depth at entry
    /// (1 = outermost).
    Span {
        /// Wall-clock duration, nanoseconds.
        dur_ns: u64,
        /// Nesting depth when the span was entered (1 = outermost).
        depth: u32,
    },
}

/// One structured telemetry record: a name, a timestamp (µs since the
/// registry was created), a monotone sequence number, and typed fields.
/// Exported as one JSON line by [`to_json_line`](Event::to_json_line) —
/// the contract in `docs/obs-schema.md`.
#[derive(Clone, Debug)]
pub struct Event {
    /// Drain-order sequence number (stamped by the registry).
    pub seq: u64,
    /// Microseconds since registry creation (stamped by the registry).
    pub ts_us: u64,
    /// Event name.
    pub name: &'static str,
    /// Point vs. completed-span.
    pub kind: EventKind,
    /// Typed fields, in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// A new point event named `name`; `seq`/`ts_us` are stamped when
    /// the event is recorded into a registry.
    pub fn new(name: &'static str) -> Self {
        Event {
            seq: 0,
            ts_us: 0,
            name,
            kind: EventKind::Point,
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// One JSON line: reserved keys `event`, `seq`, `ts_us`, `kind`
    /// (plus `dur_ns`/`depth` for spans), then the fields flattened into
    /// the same object. Field keys must avoid the reserved names.
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            "{{\"event\":\"{}\",\"seq\":{},\"ts_us\":{}",
            escape(self.name),
            self.seq,
            self.ts_us
        );
        match self.kind {
            EventKind::Point => out.push_str(",\"kind\":\"point\""),
            EventKind::Span { dur_ns, depth } => {
                out.push_str(&format!(
                    ",\"kind\":\"span\",\"dur_ns\":{dur_ns},\"depth\":{depth}"
                ));
            }
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":{}", escape(k), v.to_json()));
        }
        out.push('}');
        out
    }

    /// Human rendering of the same record (`name key=value …`), used by
    /// `--human` flags so drivers never hand-roll a second format.
    pub fn render_human(&self) -> String {
        let mut out = format!("{:>12}", self.name);
        if let EventKind::Span { dur_ns, depth } = self.kind {
            out.push_str(&format!(" dur_ns={dur_ns} depth={depth}"));
        }
        for (k, v) in &self.fields {
            match v {
                Value::Str(s) => out.push_str(&format!(" {k}={s}")),
                other => out.push_str(&format!(" {k}={}", other.to_json())),
            }
        }
        out
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// The bounded event buffer: [`STRIPES`] independently locked rings so
/// concurrent recorders rarely share a mutex, plus a global sequence
/// counter so a drain can restore total recording order.
pub(crate) struct EventSink {
    stripes: Vec<Mutex<VecDeque<Event>>>,
    seq: AtomicU64,
    dropped: AtomicU64,
}

/// Round-robin stripe assignment, one stripe per recording thread.
fn my_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

impl EventSink {
    pub(crate) fn new() -> Self {
        EventSink {
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, mut event: Event, ts_us: u64) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        event.ts_us = ts_us;
        let mut ring = self.stripes[my_stripe()]
            .lock()
            .expect("event stripe poisoned");
        if ring.len() >= STRIPE_CAP {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    pub(crate) fn drain(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            out.extend(stripe.lock().expect("event stripe poisoned").drain(..));
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_flattens_fields_and_escapes() {
        let e = Event {
            seq: 3,
            ts_us: 99,
            name: "round",
            kind: EventKind::Point,
            fields: vec![
                ("work", Value::U64(10)),
                ("ratio", Value::F64(0.5)),
                ("note", Value::Str("a\"b".into())),
            ],
        };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"round\",\"seq\":3,\"ts_us\":99,\"kind\":\"point\",\
             \"work\":10,\"ratio\":0.500,\"note\":\"a\\\"b\"}"
        );
        assert!(e.render_human().contains("work=10"));
        assert_eq!(e.field("work"), Some(&Value::U64(10)));
        assert_eq!(e.field("missing"), None);
    }

    #[test]
    fn span_kind_serializes_duration_and_depth() {
        let e = Event {
            kind: EventKind::Span {
                dur_ns: 1200,
                depth: 2,
            },
            ..Event::new("commit")
        };
        let line = e.to_json_line();
        assert!(line.contains("\"kind\":\"span\""));
        assert!(line.contains("\"dur_ns\":1200"));
        assert!(line.contains("\"depth\":2"));
    }

    #[test]
    fn full_stripe_drops_oldest_and_counts() {
        let sink = EventSink::new();
        for i in 0..(STRIPE_CAP + 5) as u64 {
            sink.push(Event::new("e").with("i", i), 0);
        }
        // Single thread → single stripe → exactly 5 drops, newest kept.
        assert_eq!(sink.dropped(), 5);
        let drained = sink.drain();
        assert_eq!(drained.len(), STRIPE_CAP);
        assert_eq!(drained[0].fields[0].1, Value::U64(5));
    }
}
