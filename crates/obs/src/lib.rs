//! # `logdiam-obs` — the workspace's unified observability layer
//!
//! One queryable telemetry surface for every layer of the reproduction:
//! the PRAM simulator's resource accounting, the theorem drivers'
//! per-round metrics, and the connectivity service's commit pipeline all
//! record into the same three primitives instead of growing one-off
//! counters per subsystem.
//!
//! * **Metrics registry** ([`Registry`]): monotonic [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s. Recording is lock-free
//!   (relaxed atomics on pre-registered handles); the registry's name
//!   maps are only locked at registration and snapshot time.
//! * **Spans** ([`Span`], [`span!`]): scoped timers. A completed span
//!   observes its duration (nanoseconds) into the histogram of the same
//!   name and appends an enter/exit event to a bounded, striped
//!   per-thread ring. Spans nest (the recorded event carries its depth)
//!   and can be disabled at runtime ([`Registry::set_spans_enabled`], or
//!   the `LOGDIAM_OBS_SPANS` environment variable read at
//!   [`Registry::new`]); a disabled span costs one relaxed load.
//! * **Structured events** ([`Event`]): named, timestamped records with
//!   typed fields, drained in order and exported as JSON lines.
//!
//! Snapshots ([`MetricsSnapshot`]) are plain data: mergeable across
//! registries (e.g. per-child bench processes), self-validating
//! (histogram count == Σ buckets), and exportable as Prometheus text
//! exposition or a single JSON object. The external contracts — metric
//! names, the event JSON-lines schema — are documented in
//! `docs/obs-schema.md`.
//!
//! Nothing in this crate is on the determinism fingerprint surface:
//! metrics and events record host timing and are never read back by any
//! algorithm, so enabling or disabling observability cannot change a
//! published label (pinned by the workspace determinism suite).
//!
//! ```
//! use logdiam_obs::{Registry, span};
//!
//! let reg = Registry::new();
//! reg.counter("requests_total").inc();
//! reg.gauge("inflight").set(3);
//! reg.histogram("batch_size").observe(128);
//! {
//!     let _commit = span!(reg, "commit", epoch = 7); // times this scope
//! }
//! reg.event(logdiam_obs::Event::new("replay_progress").with("epoch", 7u64));
//!
//! let snap = reg.snapshot();
//! snap.validate().expect("internally consistent");
//! assert_eq!(snap.counters["requests_total"], 1);
//! assert_eq!(snap.histograms["commit"].count, 1); // the span landed
//! let json = snap.to_json();
//! assert!(json.contains("\"requests_total\":1"));
//! let prom = snap.to_prometheus();
//! assert!(prom.contains("# TYPE requests_total counter"));
//! let lines = reg.drain_events();
//! assert_eq!(lines.len(), 2); // the span event + the explicit event
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod snapshot;
mod span;

pub use event::{Event, EventKind, Value};
pub use hist::{bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use snapshot::MetricsSnapshot;
pub use span::Span;

use event::EventSink;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Environment variable consulted by [`Registry::new`]: set to `0`,
/// `off`, or `false` to start with spans disabled. Timing-only — label
/// output is identical either way.
pub const SPANS_ENV: &str = "LOGDIAM_OBS_SPANS";

/// A monotonic counter handle. Cloning shares the underlying cell;
/// recording is a relaxed atomic add — approximate-ordering,
/// exact-total (the sum of all `add`s is never lost).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed value (relaxed atomics).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct Inner {
    start: Instant,
    spans_enabled: AtomicBool,
    counters: RwLock<BTreeMap<&'static str, Counter>>,
    gauges: RwLock<BTreeMap<&'static str, Gauge>>,
    histograms: RwLock<BTreeMap<&'static str, Histogram>>,
    events: EventSink,
}

/// The metrics registry: named counters, gauges, histograms, plus the
/// bounded event ring. Cheap to clone (an `Arc` handle); all clones see
/// the same metrics.
///
/// Registration (`counter`/`gauge`/`histogram`/`span`) takes a short
/// read lock on the name map (write lock only the first time a name is
/// seen); recording through a returned handle is lock-free. Hold the
/// handle in hot paths instead of re-looking it up per record.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, empty registry. Spans start enabled unless the
    /// [`SPANS_ENV`] environment variable says otherwise.
    pub fn new() -> Self {
        let spans = !matches!(
            std::env::var(SPANS_ENV).as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        Registry {
            inner: Arc::new(Inner {
                start: Instant::now(),
                spans_enabled: AtomicBool::new(spans),
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                events: EventSink::new(),
            }),
        }
    }

    /// Intern a runtime-built metric name (e.g. `format!("{prefix}_{f}")`)
    /// into the `&'static str` the registry maps require. Each unique
    /// string is leaked exactly once, process-wide; repeat calls return
    /// the same pointer. For end-of-run exports and prefixed bridges —
    /// hot paths should pass string literals instead.
    pub fn intern(name: &str) -> &'static str {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
        let mut set = INTERNED.lock().expect("obs intern set poisoned");
        if let Some(found) = set.get(name) {
            return found;
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        set.insert(leaked);
        leaked
    }

    fn get_or_insert<T: Clone + Default>(
        map: &RwLock<BTreeMap<&'static str, T>>,
        name: &'static str,
    ) -> T {
        if let Some(found) = map.read().expect("obs map poisoned").get(name) {
            return found.clone();
        }
        map.write()
            .expect("obs map poisoned")
            .entry(name)
            .or_default()
            .clone()
    }

    /// The counter registered under `name` (registered on first use).
    pub fn counter(&self, name: &'static str) -> Counter {
        Self::get_or_insert(&self.inner.counters, name)
    }

    /// The gauge registered under `name` (registered on first use).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Self::get_or_insert(&self.inner.gauges, name)
    }

    /// The histogram registered under `name` (registered on first use).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Self::get_or_insert(&self.inner.histograms, name)
    }

    /// Start a span named `name`. When it drops, its duration in
    /// nanoseconds is observed into the histogram of the same name and a
    /// span event is appended to the ring. When spans are disabled the
    /// returned guard is inert (no clock read, no recording).
    pub fn span(&self, name: &'static str) -> Span {
        if !self.spans_enabled() {
            return Span::disabled();
        }
        Span::enabled(self.clone(), name, self.histogram(name))
    }

    /// Whether spans currently record (see
    /// [`set_spans_enabled`](Registry::set_spans_enabled)).
    pub fn spans_enabled(&self) -> bool {
        self.inner.spans_enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable span recording at runtime. Purely a telemetry
    /// switch: toggling it cannot change any algorithm output.
    pub fn set_spans_enabled(&self, enabled: bool) {
        self.inner.spans_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Microseconds since the registry was created — the timestamp base
    /// of every recorded [`Event`].
    pub fn elapsed_us(&self) -> u64 {
        self.inner.start.elapsed().as_micros() as u64
    }

    /// Record a structured event into the bounded ring. The registry
    /// stamps the sequence number and timestamp; when a ring stripe is
    /// full the oldest event in it is dropped (counted by
    /// [`dropped_events`](Registry::dropped_events)) — recording never
    /// blocks on a reader.
    pub fn event(&self, event: Event) {
        self.inner.events.push(event, self.elapsed_us());
    }

    /// Drain every buffered event, in recording (sequence) order.
    pub fn drain_events(&self) -> Vec<Event> {
        self.inner.events.drain()
    }

    /// Events discarded because their ring stripe was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.events.dropped()
    }

    /// A point-in-time copy of every metric. The snapshot is plain data:
    /// mergeable, exportable, and safe to hold while recording continues.
    /// Concurrent recording may be torn *across* metrics (the snapshot is
    /// not a global atomic cut) but each histogram's count always equals
    /// the sum of its buckets — counts and buckets are written
    /// count-first, read buckets-first (see [`Histogram::snapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .read()
            .expect("obs map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .expect("obs map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .expect("obs map poisoned")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("spans_enabled", &self.spans_enabled())
            .finish_non_exhaustive()
    }
}

/// Start a [`Span`] on a registry, optionally attaching fields:
/// `span!(reg, "commit")` or `span!(reg, "commit", epoch = e, m = m)`.
/// Field values must convert to `u64` with `as`.
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr) => {
        $reg.span($name)
    };
    ($reg:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $reg.span($name)$(.with(stringify!($key), $value as u64))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("c").get(), 5);
        let g = reg.gauge("g");
        g.set(-3);
        g.add(5);
        assert_eq!(reg.gauge("g").get(), 2);
        // Same name, same cell.
        assert_eq!(c.get(), reg.counter("c").get());
    }

    #[test]
    fn span_records_into_same_named_histogram_and_ring() {
        let reg = Registry::new();
        reg.set_spans_enabled(true);
        {
            let _outer = span!(reg, "outer", k = 3);
            let _inner = span!(reg, "inner");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["outer"].count, 1);
        assert_eq!(snap.histograms["inner"].count, 1);
        let events = reg.drain_events();
        assert_eq!(events.len(), 2);
        // Inner span ends (and records) first; depth reflects nesting.
        assert_eq!(events[0].name, "inner");
        assert!(matches!(events[0].kind, EventKind::Span { depth: 2, .. }));
        assert!(matches!(events[1].kind, EventKind::Span { depth: 1, .. }));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let reg = Registry::new();
        reg.set_spans_enabled(false);
        {
            let _s = span!(reg, "quiet", a = 1);
        }
        let snap = reg.snapshot();
        assert!(snap.histograms.is_empty());
        assert!(reg.drain_events().is_empty());
        reg.set_spans_enabled(true);
        {
            let _s = span!(reg, "loud");
        }
        assert_eq!(reg.snapshot().histograms["loud"].count, 1);
    }

    #[test]
    fn intern_returns_one_pointer_per_unique_name() {
        let a = Registry::intern("pfx_steps");
        let b = Registry::intern(&format!("pfx_{}", "steps"));
        assert!(std::ptr::eq(a, b));
        let reg = Registry::new();
        reg.gauge(a).set(7);
        assert_eq!(reg.gauge(b).get(), 7);
    }

    #[test]
    fn events_drain_in_sequence_order() {
        let reg = Registry::new();
        for i in 0..10u64 {
            reg.event(Event::new("tick").with("i", i));
        }
        let events = reg.drain_events();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.fields[0].1, Value::U64(i as u64));
        }
        assert!(reg.drain_events().is_empty(), "drain consumes");
        assert_eq!(reg.dropped_events(), 0);
    }
}
