//! Log-bucketed histograms: lock-free recording, mergeable snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket
/// `b ≥ 1` holds values in `[2^(b−1), 2^b − 1]` — i.e. the bucket index
/// of `v ≥ 1` is its bit width, so a value landing exactly on a power of
/// two `2^k` goes to bucket `k + 1` (it is the *lower* edge of that
/// bucket's range).
pub const BUCKETS: usize = 65;

/// Bucket index of `v`: 0 for 0, otherwise the bit width of `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `b`.
fn bucket_range(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

#[derive(Debug)]
pub(crate) struct HistCore {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log-bucketed histogram handle ([`BUCKETS`] power-of-two buckets
/// plus exact count / sum / max). Cloning shares the cells; recording is
/// a handful of relaxed atomic ops, so concurrent totals are exact even
/// though cross-metric ordering is not.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Histogram {
    /// Record one value.
    pub fn observe(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        // Count last: a snapshot reading count-first / buckets-last could
        // otherwise see a count with no matching bucket increment.
        c.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds — the convention
    /// every span-backed latency histogram uses (`*_ns` names).
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos() as u64);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy: `count ≤ Σ buckets` never fails its
    /// [`HistogramSnapshot::validate`] even under concurrent recording,
    /// because `count` is read first and incremented last.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        let count = c.count.load(Ordering::Relaxed);
        let max = c.max.load(Ordering::Relaxed);
        let sum = c.sum.load(Ordering::Relaxed);
        let mut buckets: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Clamp to exactly `count` samples (in-flight observes may have
        // bumped a bucket after `count` was read): drop the excess from
        // the newest increments, scanning from the top.
        let mut excess = buckets.iter().sum::<u64>().saturating_sub(count);
        for b in buckets.iter_mut().rev() {
            if excess == 0 {
                break;
            }
            let take = (*b).min(excess);
            *b -= take;
            excess -= take;
        }
        HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable, exportable,
/// self-validating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`]; always
    /// [`BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Exact mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0 < q ≤ 1`), linearly interpolated
    /// inside the containing power-of-two bucket and clamped to the
    /// recorded max. Exact for `q = 1` (returns `max`); otherwise
    /// accurate to within the bucket's 2× width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.max as f64;
        }
        let rank = (q * self.count as f64).ceil().max(1.0);
        let mut seen = 0.0;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c as f64;
            if rank <= next {
                let (lo, hi) = bucket_range(b);
                let frac = (rank - seen) / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                return est.min(self.max as f64);
            }
            seen = next;
        }
        self.max as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`: counts, sums, and buckets add; max is
    /// the max. Associative and commutative, so per-process snapshots
    /// merge in any order to the same totals. `sum` wraps on overflow,
    /// exactly like the relaxed `fetch_add`s in [`Histogram::observe`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Internal-consistency check: the bucket vector is full-length, the
    /// count equals the sum of buckets, and an empty histogram carries
    /// no sum/max.
    pub fn validate(&self) -> Result<(), String> {
        if self.buckets.len() != BUCKETS {
            return Err(format!(
                "histogram has {} buckets, expected {BUCKETS}",
                self.buckets.len()
            ));
        }
        let total: u64 = self.buckets.iter().sum();
        if total != self.count {
            return Err(format!(
                "histogram count {} != sum of buckets {total}",
                self.count
            ));
        }
        if self.count == 0 && (self.sum != 0 || self.max != 0) {
            return Err("empty histogram with non-zero sum/max".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // The contract spelled out on BUCKETS: 0 → bucket 0, v ≥ 1 →
        // bit width, so 2^k lands in bucket k+1 and 2^k − 1 in bucket k.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..63 {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k + 1, "2^{k} must open bucket {}", k + 1);
            assert_eq!(bucket_index(p - 1), k, "2^{k}-1 must close bucket {k}");
            assert_eq!(bucket_index(p + 1), k + 1);
        }
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        // bucket_range is the exact inverse image.
        for b in 0..BUCKETS {
            let (lo, hi) = bucket_range(b);
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
        }
    }

    #[test]
    fn observe_tracks_count_sum_max_and_validates() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        let s = h.snapshot();
        s.validate().unwrap();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 2 + 3 + 1024).wrapping_add(u64::MAX)
        );
        assert_eq!(s.buckets[0], 1); // the 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[11], 1); // 1024 = 2^10 → bucket 11
        assert_eq!(s.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn quantiles_interpolate_and_clamp_to_max() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(1000);
        }
        let s = h.snapshot();
        // All mass in one bucket: every quantile is within that bucket
        // and never exceeds the true max.
        assert!(s.p50() <= 1000.0 && s.p50() >= 512.0);
        assert_eq!(s.quantile(1.0), 1000.0);
        assert_eq!(s.mean(), 1000.0);
    }

    #[test]
    fn merge_adds_and_stays_valid() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.observe(5);
        a.observe(70);
        b.observe(6);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        m.validate().unwrap();
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 81);
        assert_eq!(m.max, 70);
    }
}
