//! Mergeable point-in-time metric snapshots and the two exporters
//! (Prometheus text exposition, single JSON object).

use crate::hist::HistogramSnapshot;
use std::collections::BTreeMap;

/// A plain-data copy of a [`crate::Registry`]'s metrics: counters,
/// gauges, and histogram snapshots, keyed by name.
///
/// Snapshots from different registries (e.g. per-child bench processes)
/// [`merge`](MetricsSnapshot::merge) associatively; the result
/// [`validate`](MetricsSnapshot::validate)s like any other snapshot.
/// The JSON layout is the `obs` dump contract in `docs/obs-schema.md`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: counters and histogram buckets add,
    /// gauges take `other`'s value when present (last write wins).
    /// Associative, so any merge tree over per-process snapshots yields
    /// the same counters and histograms.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Validate every histogram ([`HistogramSnapshot::validate`]).
    /// Counters and gauges need no check (unsigned / free-ranging).
    pub fn validate(&self) -> Result<(), String> {
        for (name, h) in &self.histograms {
            h.validate().map_err(|e| format!("{name}: {e}"))?;
        }
        Ok(())
    }

    /// Export as one JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,max,
    /// mean,p50,p90,p99,buckets:[..]}}}` — histogram `buckets` arrays are
    /// written in full (fixed [`crate::BUCKETS`] length) so `count ==
    /// Σ buckets` is externally checkable.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                format!(
                    "\"{k}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\
                     \"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    h.max,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    buckets.join(",")
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }

    /// Export as Prometheus text exposition (untyped labels-free
    /// families): counters as `counter`, gauges as `gauge`, histograms
    /// as cumulative `_bucket{le="..."}` series with `_sum`/`_count`,
    /// bucket edges at the powers of two.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("# TYPE {k} counter\n{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("# TYPE {k} gauge\n{k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("# TYPE {k} histogram\n"));
            let mut cum = 0u64;
            for (b, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                // Upper (inclusive) edge of bucket b: 0, then 2^b − 1.
                let le = if b == 0 {
                    0
                } else if b == 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                out.push_str(&format!("{k}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{k}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{k}_sum {}\n{k}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> MetricsSnapshot {
        let reg = Registry::new();
        reg.counter("a_total").add(3);
        reg.gauge("depth").set(-2);
        reg.histogram("lat_ns").observe(100);
        reg.histogram("lat_ns").observe(200);
        reg.snapshot()
    }

    #[test]
    fn json_export_has_all_sections() {
        let s = sample();
        let json = s.to_json();
        assert!(json.contains("\"a_total\":3"));
        assert!(json.contains("\"depth\":-2"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"buckets\":["));
        s.validate().unwrap();
    }

    #[test]
    fn prometheus_export_is_cumulative() {
        let s = sample();
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE a_total counter\na_total 3"));
        assert!(prom.contains("# TYPE depth gauge\ndepth -2"));
        assert!(prom.contains("# TYPE lat_ns histogram"));
        assert!(prom.contains("lat_ns_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("lat_ns_sum 300"));
        assert!(prom.contains("lat_ns_count 2"));
    }

    #[test]
    fn merge_is_associative_on_simple_snapshots() {
        let a = sample();
        let b = sample();
        let c = sample();
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        ab_c.validate().unwrap();
        assert_eq!(ab_c.counters["a_total"], 9);
        assert_eq!(ab_c.histograms["lat_ns"].count, 6);
    }
}
