//! Scoped span timers: enter on creation, record on drop.

use crate::event::{Event, EventKind};
use crate::{Histogram, Registry};
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    /// Current span nesting depth on this thread (0 = no open span).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// A scoped timer created by [`Registry::span`] / [`crate::span!`].
///
/// On drop, an enabled span observes its wall-clock duration
/// (nanoseconds) into the histogram of the same name and appends a
/// [`EventKind::Span`] event — carrying the duration, the nesting depth
/// at entry, and any [`with`](Span::with) fields — to the registry's
/// bounded ring. Spans nest freely (depth is tracked per thread).
///
/// A span from a registry with spans disabled is inert: no clock read,
/// no histogram, no event — one relaxed load is the entire cost.
#[must_use = "a span records when it drops; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    /// `None` when disabled.
    armed: Option<SpanArmed>,
}

#[derive(Debug)]
struct SpanArmed {
    registry: Registry,
    name: &'static str,
    hist: Histogram,
    start: Instant,
    depth: u32,
    fields: Vec<(&'static str, crate::Value)>,
}

impl Span {
    pub(crate) fn disabled() -> Self {
        Span { armed: None }
    }

    pub(crate) fn enabled(registry: Registry, name: &'static str, hist: Histogram) -> Self {
        let depth = DEPTH.with(|d| {
            let depth = d.get() + 1;
            d.set(depth);
            depth
        });
        Span {
            armed: Some(SpanArmed {
                registry,
                name,
                hist,
                start: Instant::now(),
                depth,
                fields: Vec::new(),
            }),
        }
    }

    /// Attach a field to the span's exit event (builder style; a no-op
    /// on a disabled span).
    pub fn with(mut self, key: &'static str, value: impl Into<crate::Value>) -> Self {
        if let Some(armed) = self.armed.as_mut() {
            armed.fields.push((key, value.into()));
        }
        self
    }

    /// Whether this span is recording (false when the registry had spans
    /// disabled at creation).
    pub fn is_recording(&self) -> bool {
        self.armed.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else {
            return;
        };
        let dur = armed.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        armed.hist.observe_duration(dur);
        armed.registry.event(Event {
            seq: 0,
            ts_us: 0,
            name: armed.name,
            kind: EventKind::Span {
                dur_ns: dur.as_nanos() as u64,
                depth: armed.depth,
            },
            fields: armed.fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_unwinds_even_when_spans_interleave_with_disabled_ones() {
        let reg = Registry::new();
        reg.set_spans_enabled(true);
        {
            let a = reg.span("a");
            assert!(a.is_recording());
            reg.set_spans_enabled(false);
            let b = reg.span("b"); // disabled mid-flight: inert
            assert!(!b.is_recording());
            reg.set_spans_enabled(true);
            let _c = reg.span("c");
        }
        let events = reg.drain_events();
        let depths: Vec<u32> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::Span { depth, .. } => depth,
                _ => 0,
            })
            .collect();
        // c closes first at depth 2 (b never counted), then a at 1.
        assert_eq!(depths, vec![2, 1]);
        // Depth fully unwound: a fresh span is depth 1 again.
        {
            let _d = reg.span("d");
        }
        let events = reg.drain_events();
        assert!(matches!(events[0].kind, EventKind::Span { depth: 1, .. }));
    }

    #[test]
    fn span_duration_lands_in_histogram_nanoseconds() {
        let reg = Registry::new();
        {
            let _s = reg.span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = reg.snapshot();
        let h = &s.histograms["sleepy"];
        assert_eq!(h.count, 1);
        assert!(h.max >= 2_000_000, "2 ms must be ≥ 2e6 ns, got {}", h.max);
    }
}
