//! Registry contract tests: snapshot-merge associativity over random
//! histograms (proptest) and concurrent-recording exactness.
//!
//! The stress tests run at std-thread widths 1/2/8 in one process *and*
//! on the rayon pool, whose width CI pins via `RAYON_NUM_THREADS`
//! (the thread-matrix job runs the workspace suite at 2 and native
//! widths) — either way every recorded increment must land: relaxed
//! ordering makes counters approximate in *ordering*, never in *total*.

use logdiam_obs::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
use proptest::prelude::*;
use rayon::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) for histogram snapshots built from
    /// arbitrary value sets, and the merge equals the histogram of the
    /// concatenated values (so merging per-process snapshots is exactly
    /// recording everything in one registry).
    #[test]
    fn histogram_merge_is_associative_and_lossless(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
        c in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);

        prop_assert_eq!(&left, &right);
        prop_assert!(left.validate().is_ok(), "{:?}", left.validate());

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = snapshot_of(&all);
        // Sum wraps identically (relaxed u64 adds), so compare as-is.
        prop_assert!(direct.validate().is_ok(), "{:?}", direct.validate());
        prop_assert_eq!(&left, &direct);
    }

    /// Full-snapshot merge associativity, counters included.
    #[test]
    fn registry_snapshot_merge_is_associative(
        counts in proptest::collection::vec(any::<u32>(), 3..4),
    ) {
        let snaps: Vec<MetricsSnapshot> = counts
            .iter()
            .map(|&k| {
                let reg = Registry::new();
                reg.counter("total").add(k as u64);
                reg.histogram("h").observe(k as u64);
                reg.snapshot()
            })
            .collect();
        let mut left = snaps[0].clone();
        left.merge(&snaps[1]);
        left.merge(&snaps[2]);
        let mut bc = snaps[1].clone();
        bc.merge(&snaps[2]);
        let mut right = snaps[0].clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(
            left.counters["total"],
            counts.iter().map(|&k| k as u64).sum::<u64>()
        );
    }
}

/// Hammer one registry from `threads` std threads; every add and observe
/// must be present in the final snapshot.
fn stress_at(threads: usize) {
    const PER_THREAD: u64 = 20_000;
    let reg = Registry::new();
    reg.set_spans_enabled(true);
    std::thread::scope(|s| {
        for t in 0..threads {
            let reg = reg.clone();
            s.spawn(move || {
                let counter = reg.counter("ops_total");
                let hist = reg.histogram("val");
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.observe(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    snap.validate().unwrap();
    let expected = threads as u64 * PER_THREAD;
    assert_eq!(snap.counters["ops_total"], expected, "at {threads} threads");
    let h = &snap.histograms["val"];
    assert_eq!(h.count, expected);
    assert_eq!(h.max, expected - 1);
    // Exact sum of 0..expected (fits u64 comfortably at this size).
    assert_eq!(h.sum, expected * (expected - 1) / 2);
}

#[test]
fn concurrent_recording_is_exact_at_1_2_8_threads() {
    for threads in [1, 2, 8] {
        stress_at(threads);
    }
}

/// Same exactness on the rayon pool (width = `RAYON_NUM_THREADS`, pinned
/// by the CI thread matrix): chunked parallel iteration over 100k items.
#[test]
fn concurrent_recording_is_exact_on_the_rayon_pool() {
    const N: u64 = 100_000;
    let reg = Registry::new();
    let counter = reg.counter("ops_total");
    let hist = reg.histogram("val");
    (0..N).into_par_iter().for_each(|i| {
        counter.inc();
        hist.observe(i);
    });
    let snap = reg.snapshot();
    snap.validate().unwrap();
    assert_eq!(snap.counters["ops_total"], N);
    assert_eq!(snap.histograms["val"].count, N);
    assert_eq!(snap.histograms["val"].sum, N * (N - 1) / 2);
    assert_eq!(snap.histograms["val"].max, N - 1);
}

/// Snapshots taken *while* recorders run must still validate (count ==
/// Σ buckets), even though they are not a global atomic cut.
#[test]
fn mid_flight_snapshots_always_validate() {
    let reg = Registry::new();
    let hist = reg.histogram("hot");
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let hist = hist.clone();
            let done = &done;
            s.spawn(move || {
                let mut v: u64 = 1;
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    hist.observe(v);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            });
        }
        for _ in 0..200 {
            reg.snapshot().validate().unwrap();
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    reg.snapshot().validate().unwrap();
}
