//! # `pram-kit` — building blocks for the paper's algorithms
//!
//! The four building blocks of §2.2 (link, shortcut, alter, expand-by-
//! hashing) plus the two tools the PRAM implementation needs that the MPC
//! algorithms got "for free" (§1.2.2):
//!
//! * [`hashing`] — the pairwise-independent hash family. The paper's whole
//!   point is that *limited-collision hashing* replaces the MPC sorting /
//!   prefix-sum primitives; every table insertion in the workspace goes
//!   through this family. Pairwise independence suffices (paper §2.2), so
//!   a hash function is two words `(a, b)` — exactly what a simulated
//!   processor is allowed to read in O(1) time.
//! * [`compaction`] — approximate compaction (Lemma D.2, Goodrich '91):
//!   map `k` distinguished cells of an array one-to-one into an array of
//!   size `O(k)`. Used by COMPACT and by the per-round block allocation of
//!   EXPAND-MAXLINK (Step 8). We provide a *measured* hash-with-retry
//!   implementation and a *charged-O(1)* mode reflecting the
//!   `n log n`-processor bound the paper invokes (see DESIGN.md §1.2).
//! * [`ops`] — SHORTCUT, ALTER, flag-OR termination tests, and host-side
//!   helpers shared by every algorithm crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compaction;
pub mod hashing;
pub mod ops;
pub mod prefix;

pub use compaction::{compact, compact_over, CompactionMode, CompactionResult};
pub use hashing::{PairSet, PairwiseHash};
