//! Parallel prefix sum — the primitive the paper *avoids*.
//!
//! On an MPC, prefix sums take O(1) communication rounds, which is what
//! the Andoni et al. / Behnezhad et al. algorithms lean on for processor
//! allocation and neighbour indexing. On a CRCW PRAM with `poly(n)`
//! processors they require `Ω(log n / log log n)` time (Beame–Håstad,
//! cited as \[BH89\]); the textbook work-efficient algorithm below takes
//! `2⌈log₂ n⌉` steps. The whole point of the paper's limited-collision
//! hashing is to sidestep this cost — experiment E13 runs this primitive
//! against hashing-based approximate compaction to show the gap the paper
//! exploits.

use pram_sim::{Handle, Pram};

/// Exclusive prefix sum of `xs` into a fresh array, returning
/// `(result, sum, steps_used)`. Blelloch up-sweep/down-sweep, `2⌈log₂ n⌉`
/// steps, `O(n)` work.
pub fn exclusive_prefix_sum(pram: &mut Pram, xs: Handle) -> (Handle, u64, u64) {
    let n = xs.len();
    let size = n.next_power_of_two();
    let tree = pram.alloc_filled(size, 0);
    pram.step(n, move |i, ctx| {
        let v = ctx.read(xs, i as usize);
        ctx.write(tree, i as usize, v);
    });
    let mut steps = 1;

    // Up-sweep: tree[i] accumulates block sums in place.
    let mut stride = 1;
    while stride < size {
        let pairs = size / (2 * stride);
        pram.step(pairs, move |p, ctx| {
            let right = (p as usize * 2 + 2) * stride - 1;
            let left = right - stride;
            let a = ctx.read(tree, left);
            let b = ctx.read(tree, right);
            ctx.write(tree, right, a.wrapping_add(b));
        });
        steps += 1;
        stride *= 2;
    }
    let total = pram.get(tree, size - 1);
    pram.set(tree, size - 1, 0);

    // Down-sweep.
    let mut stride = size / 2;
    while stride >= 1 {
        let pairs = size / (2 * stride);
        pram.step(pairs, move |p, ctx| {
            let right = (p as usize * 2 + 2) * stride - 1;
            let left = right - stride;
            let a = ctx.read(tree, left);
            let b = ctx.read(tree, right);
            ctx.write(tree, left, b);
            ctx.write(tree, right, a.wrapping_add(b));
        });
        steps += 1;
        stride /= 2;
    }
    (tree, total, steps)
}

/// Exact compaction *via prefix sums* (what the MPC algorithms do, and
/// what the paper replaces with hashing): distinguished items get the
/// dense ranks `0..k`. Returns `(index, k, steps)` — compare the step
/// count with [`crate::compaction::compact`]'s.
pub fn compact_by_prefix_sum(pram: &mut Pram, active: Handle) -> (Handle, u64, u64) {
    let n = active.len();
    let flags = pram.alloc(n);
    pram.step(n, move |v, ctx| {
        let a = ctx.read(active, v as usize);
        ctx.write(flags, v as usize, (a != 0) as u64);
    });
    let (ranks, k, steps) = exclusive_prefix_sum(pram, flags);
    let index = pram.alloc_filled(n, pram_sim::NULL);
    pram.step(n, move |v, ctx| {
        if ctx.read(active, v as usize) != 0 {
            let r = ctx.read(ranks, v as usize);
            ctx.write(index, v as usize, r);
        }
    });
    pram.free(flags);
    pram.free(ranks);
    (index, k, steps + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_sim::{WritePolicy, NULL};

    #[test]
    fn prefix_sum_matches_sequential() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let vals: Vec<u64> = (0..100).map(|i| (i * 7 + 3) % 11).collect();
        let xs = pram.alloc(vals.len());
        for (i, &v) in vals.iter().enumerate() {
            pram.set(xs, i, v);
        }
        let (out, total, _) = exclusive_prefix_sum(&mut pram, xs);
        let mut acc = 0;
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(pram.get(out, i), acc, "index {i}");
            acc += v;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn prefix_sum_steps_are_logarithmic() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let xs = pram.alloc_filled(1 << 12, 1);
        let (_, total, steps) = exclusive_prefix_sum(&mut pram, xs);
        assert_eq!(total, 1 << 12);
        assert_eq!(steps, 1 + 2 * 12);
    }

    #[test]
    fn prefix_compaction_gives_dense_ranks() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
        let n = 200;
        let active = pram.alloc_filled(n, 0);
        let picked: Vec<usize> = (0..n).filter(|v| v % 3 == 1).collect();
        for &v in &picked {
            pram.set(active, v, 1);
        }
        let (index, k, _) = compact_by_prefix_sum(&mut pram, active);
        assert_eq!(k as usize, picked.len());
        for (rank, &v) in picked.iter().enumerate() {
            assert_eq!(pram.get(index, v), rank as u64);
        }
        for v in (0..n).filter(|v| v % 3 != 1) {
            assert_eq!(pram.get(index, v), NULL);
        }
    }

    #[test]
    fn works_on_non_power_of_two_lengths() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let xs = pram.alloc_filled(7, 2);
        let (out, total, _) = exclusive_prefix_sum(&mut pram, xs);
        assert_eq!(total, 14);
        assert_eq!(pram.get(out, 6), 12);
    }
}
