//! Approximate compaction (Lemma D.2 / Goodrich '91).
//!
//! Given an array with `k` *distinguished* cells, map each distinguished
//! cell one-to-one into an array of length `O(k)`. The paper uses this to
//! (a) rename ongoing vertices into `[2m/ log^c n]` in COMPACT and (b)
//! index the roots of each level in Step 8 of EXPAND-MAXLINK so they can
//! be assigned pre-determined processor blocks.
//!
//! Our implementation is hash-with-retry: each unplaced distinguished item
//! hashes into the output array with a fresh pairwise-independent function,
//! concurrent writers are resolved by the ARBITRARY write rule, winners
//! claim their slot, losers retry. With load factor ≤ 1/2 a constant
//! fraction places per round, so `O(log k)` rounds suffice whp (measured in
//! [`CompactionResult::rounds`]; typically < 10).
//!
//! [`CompactionMode::ChargedO1`] runs the same protocol but charges the
//! constant time bound of Lemma D.2 — the paper's setting guarantees
//! `n log n` processors per compaction, under which Goodrich's algorithm is
//! O(1)-time, and our experiments inherit that accounting (DESIGN.md §1.2).

use crate::hashing::PairwiseHash;
use crate::ops::{host_count, Flag};
use pram_sim::{Ctx, Handle, Pram, NULL};

/// Accounting mode for [`compact`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionMode {
    /// Charge the real retry rounds (each round = 2 steps).
    Measured,
    /// Charge the Lemma D.2 bound: O(1) steps (we charge 4) at the caller's
    /// processor count; the retry rounds still execute but at charge 0.
    ChargedO1,
}

/// Output of [`compact`].
#[derive(Debug)]
pub struct CompactionResult {
    /// `index[v] = slot` for distinguished `v`, `NULL` otherwise;
    /// slots are unique and `< cap`.
    pub index: Handle,
    /// `slots[j] = v` if distinguished `v` was placed at `j`, else `NULL`.
    pub slots: Handle,
    /// Length of `slots` (a power of two, ≥ 2k).
    pub cap: usize,
    /// Retry rounds actually executed.
    pub rounds: u64,
}

impl CompactionResult {
    /// Release the result arrays.
    pub fn free(self, pram: &mut Pram) {
        pram.free(self.index);
        pram.free(self.slots);
    }
}

/// Errors from [`compact`].
#[derive(Debug, PartialEq, Eq)]
pub enum CompactionError {
    /// The retry loop failed to place every item within the round budget
    /// (astronomically unlikely with healthy hashing; surfaced rather than
    /// looping forever so tests can exercise adversarial seeds).
    RoundBudgetExceeded {
        /// Items still unplaced when the budget ran out.
        unplaced: usize,
    },
}

/// Maximum retry rounds before giving up.
const MAX_ROUNDS: u64 = 64;

/// Approximate compaction over the distinguished cells of `active`
/// (`active[v] != 0` marks `v` distinguished).
///
/// Returns per-item slot indices that are unique within `[0, cap)` with
/// `cap ≤ max(4, 4k)`. See module docs for the protocol and accounting.
pub fn compact(
    pram: &mut Pram,
    active: Handle,
    seed: u64,
    mode: CompactionMode,
) -> Result<CompactionResult, CompactionError> {
    let n = active.len();
    let k = host_count(pram, active, |x| x != 0);
    let cap = (2 * k).next_power_of_two().max(4);
    let index = pram.alloc_filled(n, NULL);
    let slots = pram.alloc_filled(cap, NULL);
    let taken = pram.alloc_filled(cap, 0);
    let unplaced_flag = Flag::new(pram);

    let charge = match mode {
        CompactionMode::Measured => 1,
        CompactionMode::ChargedO1 => 0,
    };

    let mut rounds = 0;
    let mut done = k == 0;
    while !done {
        if rounds >= MAX_ROUNDS {
            let unplaced =
                host_count(pram, index, |x| x == NULL) - host_count(pram, active, |x| x == 0);
            pram.free(taken);
            unplaced_flag.free(pram);
            return Err(CompactionError::RoundBudgetExceeded { unplaced });
        }
        let h = PairwiseHash::new(seed ^ (rounds.wrapping_mul(0x9E37_79B9)), cap as u64);
        // Step A: every unplaced distinguished item bids for a free slot.
        pram.step_charged(n, charge, |v, ctx| {
            if ctx.read(active, v as usize) == 0 || ctx.read(index, v as usize) != NULL {
                return;
            }
            let slot = h.eval(v) as usize;
            if ctx.read(taken, slot) == 0 {
                ctx.write(slots, slot, v);
            }
        });
        // Step B: winners claim; losers raise the retry flag.
        unplaced_flag.clear(pram);
        pram.step_charged(n, charge, |v, ctx| {
            if ctx.read(active, v as usize) == 0 || ctx.read(index, v as usize) != NULL {
                return;
            }
            let slot = h.eval(v) as usize;
            if ctx.read(taken, slot) == 0 && ctx.read(slots, slot) == v {
                ctx.write(index, v as usize, slot as u64);
                ctx.write(taken, slot, 1);
            } else {
                unplaced_flag.raise(ctx);
            }
        });
        rounds += 1;
        done = !unplaced_flag.read(pram);
    }

    if mode == CompactionMode::ChargedO1 {
        // Lemma D.2: O(1) time with n log n processors; charge 4 steps.
        pram.charge(n, 4);
    }

    pram.free(taken);
    unplaced_flag.free(pram);
    Ok(CompactionResult {
        index,
        slots,
        cap,
        rounds,
    })
}

/// Charged compaction over an *index slice* — the controller-side variant
/// of [`compact`] that live-work schedulers use to refresh their compacted
/// lists (the per-round Lemma-D.2 step).
///
/// `items` is the previous compacted list (a host mirror of the array the
/// last compaction produced). One simulated processor per item evaluates
/// `keep` against the pre-step memory image — every `ctx` read is counted —
/// and flags survivors; the survivors are then placed into a dense output
/// array, charged at the Lemma-D.2 bound (O(1) steps, here 4, at
/// `items.len()` processors — same accounting as
/// [`CompactionMode::ChargedO1`]; the paper's alternative is
/// [`crate::prefix::exclusive_prefix_sum`] ranks at `Ω(log)` steps, which
/// is exactly what limited-collision hashing avoids). The returned vector
/// is the host mirror of that dense array, in stable first-seen order so
/// runs stay deterministic and thread-count invariant.
///
/// Total charge: 1 step (predicate) + 4 steps (placement), both at
/// `items.len()` processors — O(live), never O(n + m).
///
/// # Example
///
/// ```
/// use pram_kit::compaction::compact_over;
/// use pram_sim::{Pram, WritePolicy};
///
/// let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(7));
/// let items: Vec<u32> = (0..8).collect();
/// // Keep the even items; the survivors come back dense, in first-seen
/// // order, and the step was charged at 8 processors (the live count).
/// let kept = compact_over(&mut pram, &items, |_p, &x, _ctx| x % 2 == 0);
/// assert_eq!(kept, vec![0, 2, 4, 6]);
/// ```
pub fn compact_over<T, F>(pram: &mut Pram, items: &[T], keep: F) -> Vec<T>
where
    T: Copy + Sync,
    F: Fn(u64, &T, &mut Ctx) -> bool + Send + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let flags = pram.alloc(items.len());
    pram.step_over(items, |p, it, ctx| {
        if keep(p, it, ctx) {
            ctx.write(flags, p as usize, 1);
        }
    });
    pram.charge(items.len(), 4); // Lemma D.2: placement in O(1) charged time
    let out: Vec<T> = {
        let fl = pram.view(flags);
        items
            .iter()
            .zip(fl.iter())
            .filter(|&(_, f)| f != 0)
            .map(|(&it, _)| it)
            .collect()
    };
    pram.free(flags);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_sim::WritePolicy;
    use std::collections::HashSet;

    fn run_compaction(
        n: usize,
        distinguished: &[usize],
        policy: WritePolicy,
        seed: u64,
        mode: CompactionMode,
    ) -> (Pram, CompactionResult) {
        let mut pram = Pram::new(policy);
        let active = pram.alloc_filled(n, 0);
        for &v in distinguished {
            pram.set(active, v, 1);
        }
        let res = compact(&mut pram, active, seed, mode).expect("compaction");
        (pram, res)
    }

    fn check_valid(pram: &Pram, res: &CompactionResult, distinguished: &HashSet<usize>) {
        let index = pram.read_vec(res.index);
        let mut used = HashSet::new();
        for (v, &slot) in index.iter().enumerate() {
            if distinguished.contains(&v) {
                assert_ne!(slot, NULL, "vertex {v} unplaced");
                assert!((slot as usize) < res.cap);
                assert!(used.insert(slot), "slot {slot} assigned twice");
                assert_eq!(pram.get(res.slots, slot as usize), v as u64);
            } else {
                assert_eq!(index[v], NULL, "non-distinguished {v} got a slot");
            }
        }
    }

    #[test]
    fn compacts_sparse_set_uniquely() {
        let n = 1000;
        let distinguished: Vec<usize> = (0..n).step_by(17).collect();
        let set: HashSet<usize> = distinguished.iter().copied().collect();
        let (pram, res) = run_compaction(
            n,
            &distinguished,
            WritePolicy::ArbitrarySeeded(1),
            9,
            CompactionMode::Measured,
        );
        assert!(res.cap <= 4 * distinguished.len());
        check_valid(&pram, &res, &set);
    }

    #[test]
    fn works_under_all_policies() {
        let n = 500;
        let distinguished: Vec<usize> = (0..n).filter(|v| v % 3 == 0).collect();
        let set: HashSet<usize> = distinguished.iter().copied().collect();
        for policy in [
            WritePolicy::ArbitrarySeeded(7),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let (pram, res) =
                run_compaction(n, &distinguished, policy, 3, CompactionMode::Measured);
            check_valid(&pram, &res, &set);
        }
    }

    #[test]
    fn rounds_stay_small_across_seeds() {
        let n = 4000;
        let distinguished: Vec<usize> = (0..n).filter(|v| v % 2 == 0).collect();
        for seed in 0..10 {
            let (_, res) = run_compaction(
                n,
                &distinguished,
                WritePolicy::ArbitrarySeeded(seed),
                seed,
                CompactionMode::Measured,
            );
            assert!(res.rounds <= 16, "seed {seed}: rounds {}", res.rounds);
        }
    }

    #[test]
    fn empty_set_is_trivial() {
        let (pram, res) = run_compaction(
            64,
            &[],
            WritePolicy::ArbitrarySeeded(1),
            1,
            CompactionMode::Measured,
        );
        assert_eq!(res.rounds, 0);
        assert!(pram.read_vec(res.index).iter().all(|&x| x == NULL));
    }

    #[test]
    fn all_distinguished_still_unique() {
        let n = 256;
        let distinguished: Vec<usize> = (0..n).collect();
        let set: HashSet<usize> = distinguished.iter().copied().collect();
        let (pram, res) = run_compaction(
            n,
            &distinguished,
            WritePolicy::ArbitrarySeeded(5),
            11,
            CompactionMode::Measured,
        );
        check_valid(&pram, &res, &set);
    }

    #[test]
    fn charged_mode_accounts_constant_steps() {
        let n = 2048;
        let distinguished: Vec<usize> = (0..n).step_by(4).collect();
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
        let active = pram.alloc_filled(n, 0);
        for &v in &distinguished {
            pram.set(active, v, 1);
        }
        pram.reset_stats();
        let res = compact(&mut pram, active, 7, CompactionMode::ChargedO1).unwrap();
        // 4 charged steps plus the host-free protocol steps at charge 0;
        // flag clears are host-side.
        assert_eq!(pram.stats().steps, 4);
        assert!(res.rounds >= 1);
    }

    #[test]
    fn compact_over_keeps_matching_items_in_order() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let xs = pram.alloc(16);
        for i in 0..16 {
            pram.set(xs, i, (i % 3) as u64);
        }
        let items: Vec<u32> = (0..16).collect();
        pram.reset_stats();
        let kept = compact_over(&mut pram, &items, move |_, &i, ctx| {
            ctx.read(xs, i as usize) == 0
        });
        assert_eq!(kept, vec![0, 3, 6, 9, 12, 15]);
        // 1 predicate step + 4 charged placement steps, all at 16 procs.
        let s = pram.stats();
        assert_eq!(s.steps, 5);
        assert_eq!(s.work, 16 * 5);
    }

    #[test]
    fn compact_over_empty_is_free() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let items: Vec<u32> = Vec::new();
        let kept = compact_over(&mut pram, &items, |_, &_i, _ctx| unreachable!());
        assert!(kept.is_empty());
        assert_eq!(pram.stats().work, 0);
    }

    #[test]
    fn compact_over_charges_live_size_not_array_size() {
        // The predicate reads into a huge array, but the charge tracks the
        // (small) index slice — the whole point of the live-work variant.
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        let big = pram.alloc(1 << 16);
        pram.set(big, 77, 1);
        let items: Vec<u32> = vec![3, 77, 1000];
        pram.reset_stats();
        let kept = compact_over(&mut pram, &items, move |_, &i, ctx| {
            ctx.read(big, i as usize) != 0
        });
        assert_eq!(kept, vec![77]);
        assert_eq!(pram.stats().work, 3 * 5);
    }

    #[test]
    fn deterministic_under_seeded_policy() {
        let n = 300;
        let distinguished: Vec<usize> = (0..n).step_by(3).collect();
        let (p1, r1) = run_compaction(
            n,
            &distinguished,
            WritePolicy::ArbitrarySeeded(42),
            13,
            CompactionMode::Measured,
        );
        let (p2, r2) = run_compaction(
            n,
            &distinguished,
            WritePolicy::ArbitrarySeeded(42),
            13,
            CompactionMode::Measured,
        );
        assert_eq!(p1.read_vec(r1.index), p2.read_vec(r2.index));
    }
}
