//! The classic building blocks of §2.2 as reusable PRAM routines:
//! SHORTCUT, ALTER, flag-OR termination tests, and host-side helpers.
//!
//! Conventions shared by all algorithm crates:
//!
//! * vertex ids are `u64` values stored in shared-memory cells
//!   (`NULL = u64::MAX` means "empty"),
//! * a *parent array* is a handle with one cell per vertex,
//! * an *arc list* is a pair of equal-length handles `(eu, ev)`; arc `i`
//!   is the directed edge `eu[i] → ev[i]`.

use pram_sim::{Ctx, Handle, Pram};

/// One SHORTCUT round: `v.p := v.p.p` for every vertex, in one step.
///
/// (A processor reads its parent and its grandparent — two dependent reads,
/// still O(1) per processor.)
pub fn shortcut(pram: &mut Pram, parent: Handle) {
    let n = parent.len();
    pram.step(n, move |v, ctx| {
        let p = ctx.read(parent, v as usize);
        let gp = ctx.read(parent, p as usize);
        if gp != p {
            ctx.write(parent, v as usize, gp);
        }
    });
}

/// One SHORTCUT round that raises `flag` iff any parent actually changed.
/// Used by algorithms whose termination test is "no parent changed this
/// round" (e.g. the break condition of EXPAND-MAXLINK, §3.3).
pub fn shortcut_flagged(pram: &mut Pram, parent: Handle, flag: &Flag) {
    let n = parent.len();
    pram.step(n, move |v, ctx| {
        let p = ctx.read(parent, v as usize);
        let gp = ctx.read(parent, p as usize);
        if gp != p {
            ctx.write(parent, v as usize, gp);
            flag.raise(ctx);
        }
    });
}

/// Repeat SHORTCUT until no parent changes; returns the number of rounds.
///
/// `O(log h)` rounds for maximum tree height `h` (Hirschberg et al. '79).
pub fn shortcut_until_flat(pram: &mut Pram, parent: Handle) -> u64 {
    let n = parent.len();
    let flag = Flag::new(pram);
    let mut rounds = 0;
    loop {
        flag.clear(pram);
        pram.step(n, |v, ctx| {
            let p = ctx.read(parent, v as usize);
            let gp = ctx.read(parent, p as usize);
            if gp != p {
                ctx.write(parent, v as usize, gp);
                flag.raise(ctx);
            }
        });
        rounds += 1;
        if !flag.read(pram) {
            break;
        }
    }
    flag.free(pram);
    rounds
}

/// ALTER: replace every arc `(u, v)` by `(u.p, v.p)`, in one step
/// (one processor per arc).
pub fn alter(pram: &mut Pram, eu: Handle, ev: Handle, parent: Handle) {
    let arcs = eu.len();
    assert_eq!(arcs, ev.len(), "arc arrays must have equal length");
    pram.step(arcs, move |i, ctx| {
        let i = i as usize;
        let u = ctx.read(eu, i);
        let v = ctx.read(ev, i);
        let pu = ctx.read(parent, u as usize);
        let pv = ctx.read(parent, v as usize);
        if pu != u {
            ctx.write(eu, i, pu);
        }
        if pv != v {
            ctx.write(ev, i, pv);
        }
    });
}

/// ALTER restricted to a compacted live-arc index: one processor per entry
/// of `live`, each rewriting arc `live[i]`. Semantically identical to
/// [`alter`] on the listed arcs; unlisted arcs are left untouched — legal
/// whenever they are self-loops or duplicates of listed arcs, since ALTER
/// maps a self-loop to a self-loop and duplicates to duplicates.
pub fn alter_over(pram: &mut Pram, eu: Handle, ev: Handle, parent: Handle, live: &[u32]) {
    pram.step_over(live, move |_, &a, ctx| {
        let i = a as usize;
        let u = ctx.read(eu, i);
        let v = ctx.read(ev, i);
        let pu = ctx.read(parent, u as usize);
        let pv = ctx.read(parent, v as usize);
        if pu != u {
            ctx.write(eu, i, pu);
        }
        if pv != v {
            ctx.write(ev, i, pv);
        }
    });
}

/// One SHORTCUT round restricted to the listed vertices, raising `flag`
/// iff any listed parent changed. The live-work scheduler uses this so a
/// round's pointer jumping (and its contribution to the break condition)
/// costs O(live), with finished trees flattened once at the end of the run
/// by [`shortcut_until_flat`] instead of re-walked every round.
pub fn shortcut_flagged_over(pram: &mut Pram, parent: Handle, verts: &[u32], flag: &Flag) {
    pram.step_over(verts, move |_, &v, ctx| {
        let p = ctx.read(parent, v as usize);
        let gp = ctx.read(parent, p as usize);
        if gp != p {
            ctx.write(parent, v as usize, gp);
            flag.raise(ctx);
        }
    });
}

/// One SHORTCUT round restricted to the listed vertices (no change flag).
/// The live drivers' per-phase pointer jumping: O(live) instead of O(n).
pub fn shortcut_over(pram: &mut Pram, parent: Handle, verts: &[u32]) {
    pram.step_over(verts, move |_, &v, ctx| {
        let p = ctx.read(parent, v as usize);
        let gp = ctx.read(parent, p as usize);
        if gp != p {
            ctx.write(parent, v as usize, gp);
        }
    });
}

/// Repeat [`shortcut_over`] on `verts` until none of the listed parents
/// changes; returns the rounds executed. At the fixpoint every listed
/// vertex's parent is a root (its chain may pass through unlisted finished
/// vertices — pointer jumping converges regardless). The live-work
/// postprocess uses this to flatten only the surviving frontier instead of
/// re-walking all `n` vertices.
pub fn shortcut_until_flat_over(pram: &mut Pram, parent: Handle, verts: &[u32]) -> u64 {
    let flag = Flag::new(pram);
    let mut rounds = 0;
    loop {
        flag.clear(pram);
        shortcut_flagged_over(pram, parent, verts, &flag);
        rounds += 1;
        if !flag.read(pram) {
            break;
        }
    }
    flag.free(pram);
    rounds
}

/// Whether any arc is a non-loop (`eu[i] != ev[i]`): the paper's repeat-loop
/// termination test, one flag-OR step.
pub fn any_nonloop_arc(pram: &mut Pram, eu: Handle, ev: Handle) -> bool {
    let arcs = eu.len();
    let flag = Flag::new(pram);
    pram.step(arcs, |i, ctx| {
        let i = i as usize;
        if ctx.read(eu, i) != ctx.read(ev, i) {
            flag.raise(ctx);
        }
    });
    let r = flag.read(pram);
    flag.free(pram);
    r
}

/// A single-cell OR flag: any processor may raise it during a step; the
/// host reads it between steps. Concurrent raises are concurrent writes of
/// the same value — legal on any CRCW variant.
#[derive(Clone, Copy, Debug)]
pub struct Flag {
    cell: Handle,
}

impl Flag {
    /// Allocate a cleared flag.
    pub fn new(pram: &mut Pram) -> Self {
        let cell = pram.alloc_filled(1, 0);
        Flag { cell }
    }

    /// Clear (host-side, between steps).
    pub fn clear(&self, pram: &mut Pram) {
        pram.set(self.cell, 0, 0);
    }

    /// Raise from inside a step.
    #[inline]
    pub fn raise(&self, ctx: &mut Ctx) {
        ctx.write(self.cell, 0, 1);
    }

    /// Host read.
    pub fn read(&self, pram: &Pram) -> bool {
        pram.get(self.cell, 0) != 0
    }

    /// Release the cell.
    pub fn free(self, pram: &mut Pram) {
        pram.free(self.cell);
    }
}

/// Host-side count of cells satisfying `pred` (controller bookkeeping,
/// no simulated time charged).
pub fn host_count(pram: &Pram, h: Handle, pred: impl Fn(u64) -> bool) -> usize {
    pram.view(h).iter().filter(|&x| pred(x)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_sim::WritePolicy;

    fn machine() -> Pram {
        Pram::new(WritePolicy::ArbitrarySeeded(404))
    }

    /// Parent array forming one path 0 <- 1 <- 2 <- ... <- n-1.
    fn chain_parents(pram: &mut Pram, n: usize) -> Handle {
        let parent = pram.alloc(n);
        for v in 0..n {
            pram.set(parent, v, v.saturating_sub(1) as u64);
        }
        parent
    }

    #[test]
    fn one_shortcut_halves_depth() {
        let mut pram = machine();
        let parent = chain_parents(&mut pram, 8);
        shortcut(&mut pram, parent);
        let p = pram.read_vec(parent);
        // v's parent should now be v-2 (clamped at root 0).
        assert_eq!(p, vec![0, 0, 0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn shortcut_until_flat_rounds_logarithmic() {
        let mut pram = machine();
        let n = 1 << 10;
        let parent = chain_parents(&mut pram, n);
        let rounds = shortcut_until_flat(&mut pram, parent);
        let p = pram.read_vec(parent);
        assert!(p.iter().all(|&x| x == 0));
        // depth n-1 needs ceil(log2) + 1-ish rounds
        assert!(rounds <= 12, "rounds={rounds}");
    }

    #[test]
    fn alter_moves_arcs_to_parents() {
        let mut pram = machine();
        let parent = pram.alloc(4);
        for (v, p) in [(0u64, 0u64), (1, 0), (2, 2), (3, 2)] {
            pram.set(parent, v as usize, p);
        }
        let eu = pram.alloc(2);
        let ev = pram.alloc(2);
        // arcs (1,3) and (2,0)
        pram.set(eu, 0, 1);
        pram.set(ev, 0, 3);
        pram.set(eu, 1, 2);
        pram.set(ev, 1, 0);
        alter(&mut pram, eu, ev, parent);
        assert_eq!(pram.read_vec(eu), vec![0, 2]);
        assert_eq!(pram.read_vec(ev), vec![2, 0]);
    }

    #[test]
    fn alter_over_touches_only_listed_arcs() {
        let mut pram = machine();
        let parent = pram.alloc(4);
        for (v, p) in [(0u64, 0u64), (1, 0), (2, 2), (3, 2)] {
            pram.set(parent, v as usize, p);
        }
        let eu = pram.alloc(3);
        let ev = pram.alloc(3);
        // arcs: (1,3) live, (1,1) loop (unlisted), (3,1) live.
        for (i, (u, v)) in [(1u64, 3u64), (1, 1), (3, 1)].iter().enumerate() {
            pram.set(eu, i, *u);
            pram.set(ev, i, *v);
        }
        alter_over(&mut pram, eu, ev, parent, &[0, 2]);
        assert_eq!(pram.read_vec(eu), vec![0, 1, 2]);
        assert_eq!(pram.read_vec(ev), vec![2, 1, 0]);
        // Charged at the live count.
        assert_eq!(pram.stats().work, 2);
    }

    #[test]
    fn shortcut_over_jumps_only_listed_vertices() {
        let mut pram = machine();
        let parent = chain_parents(&mut pram, 6); // 0 <- 1 <- ... <- 5
        let flag = Flag::new(&mut pram);
        shortcut_flagged_over(&mut pram, parent, &[5, 4], &flag);
        assert!(flag.read(&pram));
        assert_eq!(pram.read_vec(parent), vec![0, 0, 1, 2, 2, 3]);
        // No listed parent changes => flag stays down.
        flag.clear(&mut pram);
        shortcut_flagged_over(&mut pram, parent, &[1], &flag);
        assert!(!flag.read(&pram));
    }

    #[test]
    fn shortcut_until_flat_over_flattens_listed_frontier() {
        let mut pram = machine();
        let parent = chain_parents(&mut pram, 16); // 0 <- 1 <- ... <- 15
        let frontier: Vec<u32> = vec![15, 14, 13];
        let rounds = shortcut_until_flat_over(&mut pram, parent, &frontier);
        let p = pram.read_vec(parent);
        for &v in &frontier {
            assert_eq!(p[v as usize], 0, "listed vertex {v} not flat");
        }
        // Unlisted vertices never jump, so listed chains advance through
        // stale intermediates — convergence is O(depth) here, not O(log):
        // acceptable because live frontiers have short chains (Theorem 3
        // bounds depth by the level schedule).
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 1);
        assert!(rounds <= 16, "rounds={rounds}");
    }

    #[test]
    fn nonloop_detection() {
        let mut pram = machine();
        let eu = pram.alloc(3);
        let ev = pram.alloc(3);
        for i in 0..3 {
            pram.set(eu, i, 5);
            pram.set(ev, i, 5);
        }
        assert!(!any_nonloop_arc(&mut pram, eu, ev));
        pram.set(ev, 1, 6);
        assert!(any_nonloop_arc(&mut pram, eu, ev));
    }

    #[test]
    fn flag_raise_and_clear() {
        let mut pram = machine();
        let flag = Flag::new(&mut pram);
        assert!(!flag.read(&pram));
        pram.step(100, |_, ctx| flag.raise(ctx));
        assert!(flag.read(&pram));
        flag.clear(&mut pram);
        assert!(!flag.read(&pram));
    }

    #[test]
    fn host_count_counts() {
        let mut pram = machine();
        let h = pram.alloc(10);
        for i in 0..10 {
            pram.set(h, i, i as u64);
        }
        assert_eq!(host_count(&pram, h, |x| x % 2 == 0), 5);
    }
}
