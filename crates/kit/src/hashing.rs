//! Pairwise-independent hashing over the Mersenne prime `p = 2^61 - 1`.
//!
//! The family is `h_{a,b}(x) = ((a·x + b) mod p) mod K` with `a ∈ [1, p)`,
//! `b ∈ [0, p)`. For `x ≠ y` the pair `(h(x), h(y))` is uniform over
//! `[p)²` before the final reduction, which gives the standard pairwise
//! collision bound `Pr[h(x) = h(y)] ≤ 1/K + 1/p ≈ 1/K` — exactly the bound
//! every collision estimate in the paper (Lemma 3.9, Lemma B.11, …) uses.
//!
//! A function is two words (`a`, `b`); evaluating it is O(1). This is the
//! operational content of the paper's remark that "each processor doing
//! hashing in each round only needs to read two words".

const P: u64 = (1u64 << 61) - 1;

/// Reduce `x mod (2^61 - 1)` for `x < 2^122` using the Mersenne identity.
#[inline]
fn mod_p(x: u128) -> u64 {
    // x = hi·2^61 + lo  =>  x ≡ hi + lo (mod p); one extra fold suffices.
    let folded = (x >> 61) + (x & P as u128);
    let folded = ((folded >> 61) + (folded & P as u128)) as u64;
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// One member of the pairwise-independent family, with output range `[0, range)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    range: u64,
}

impl PairwiseHash {
    /// Draw a function from the family, seeded deterministically.
    ///
    /// `range` must be ≥ 1. Different `seed`s give (statistically)
    /// independent functions — the algorithms draw a fresh function every
    /// round exactly as the paper prescribes.
    pub fn new(seed: u64, range: u64) -> Self {
        assert!(range >= 1, "hash range must be positive");
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = 1 + next() % (P - 1);
        let b = next() % P;
        PairwiseHash { a, b, range }
    }

    /// Evaluate `h(x)` in `[0, range)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let ax_b = (self.a as u128) * (x as u128) + self.b as u128;
        mod_p(ax_b) % self.range
    }

    /// Evaluate into a different range (same underlying `(a, b)` pair);
    /// used when one round's function indexes tables of several sizes.
    #[inline]
    pub fn eval_range(&self, x: u64, range: u64) -> u64 {
        debug_assert!(range >= 1);
        let ax_b = (self.a as u128) * (x as u128) + self.b as u128;
        mod_p(ax_b) % range
    }

    /// The output range.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The two words a processor reads to know the function.
    #[inline]
    pub fn words(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_p_matches_u128_remainder() {
        let cases = [
            0u128,
            1,
            P as u128,
            P as u128 + 1,
            (P as u128) * (P as u128),
            u128::MAX >> 6,
        ];
        for &x in &cases {
            assert_eq!(mod_p(x) as u128, x % P as u128, "x={x}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let h1 = PairwiseHash::new(5, 64);
        let h2 = PairwiseHash::new(5, 64);
        let h3 = PairwiseHash::new(6, 64);
        for x in 0..100 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
        assert!((0..100).any(|x| h1.eval(x) != h3.eval(x)));
    }

    #[test]
    fn output_in_range() {
        let h = PairwiseHash::new(9, 17);
        for x in 0..10_000u64 {
            assert!(h.eval(x) < 17);
        }
    }

    #[test]
    fn marginal_uniformity() {
        // Each bucket of [0, K) should receive ≈ N/K of N consecutive keys,
        // averaged over functions.
        let k = 32u64;
        let n = 4_000u64;
        let mut counts = vec![0u64; k as usize];
        let fns = 8;
        for seed in 0..fns {
            let h = PairwiseHash::new(seed, k);
            for x in 0..n {
                counts[h.eval(x) as usize] += 1;
            }
        }
        let expect = (n * fns) as f64 / k as f64;
        for &c in &counts {
            assert!(
                (c as f64) > 0.8 * expect && (c as f64) < 1.2 * expect,
                "bucket count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn pairwise_collision_rate_close_to_1_over_k() {
        // Empirical check of the 1/K collision bound: fix x ≠ y, draw many
        // functions, count h(x)=h(y).
        let k = 16u64;
        let trials = 40_000u64;
        let mut collisions = 0u64;
        for seed in 0..trials {
            let h = PairwiseHash::new(seed.wrapping_mul(0xABCD_1234), k);
            if h.eval(12345) == h.eval(67890) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expect = 1.0 / k as f64;
        assert!(
            (rate - expect).abs() < 0.015,
            "collision rate {rate}, expected ≈ {expect}"
        );
    }

    #[test]
    fn eval_range_consistent_with_words() {
        let h = PairwiseHash::new(77, 8);
        let (a, b) = h.words();
        // Recompute by hand for a couple of inputs.
        for x in [0u64, 1, 999_999] {
            let ax_b = (a as u128) * (x as u128) + b as u128;
            let expect = (ax_b % P as u128) as u64 % 8;
            assert_eq!(h.eval(x), expect);
            assert_eq!(h.eval_range(x, 8), expect);
        }
    }
}
