//! Pairwise-independent hashing over the Mersenne prime `p = 2^61 - 1`.
//!
//! The family is `h_{a,b}(x) = ((a·x + b) mod p) mod K` with `a ∈ [1, p)`,
//! `b ∈ [0, p)`. For `x ≠ y` the pair `(h(x), h(y))` is uniform over
//! `[p)²` before the final reduction, which gives the standard pairwise
//! collision bound `Pr[h(x) = h(y)] ≤ 1/K + 1/p ≈ 1/K` — exactly the bound
//! every collision estimate in the paper (Lemma 3.9, Lemma B.11, …) uses.
//!
//! A function is two words (`a`, `b`); evaluating it is O(1). This is the
//! operational content of the paper's remark that "each processor doing
//! hashing in each round only needs to read two words".

const P: u64 = (1u64 << 61) - 1;

/// Reduce `x mod (2^61 - 1)` for `x < 2^122` using the Mersenne identity.
#[inline]
fn mod_p(x: u128) -> u64 {
    // x = hi·2^61 + lo  =>  x ≡ hi + lo (mod p); one extra fold suffices.
    let folded = (x >> 61) + (x & P as u128);
    let folded = ((folded >> 61) + (folded & P as u128)) as u64;
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// One member of the pairwise-independent family, with output range `[0, range)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    range: u64,
}

impl PairwiseHash {
    /// Draw a function from the family, seeded deterministically.
    ///
    /// `range` must be ≥ 1. Different `seed`s give (statistically)
    /// independent functions — the algorithms draw a fresh function every
    /// round exactly as the paper prescribes.
    pub fn new(seed: u64, range: u64) -> Self {
        assert!(range >= 1, "hash range must be positive");
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let a = 1 + next() % (P - 1);
        let b = next() % P;
        PairwiseHash { a, b, range }
    }

    /// Evaluate `h(x)` in `[0, range)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let ax_b = (self.a as u128) * (x as u128) + self.b as u128;
        mod_p(ax_b) % self.range
    }

    /// Evaluate into a different range (same underlying `(a, b)` pair);
    /// used when one round's function indexes tables of several sizes.
    #[inline]
    pub fn eval_range(&self, x: u64, range: u64) -> u64 {
        debug_assert!(range >= 1);
        let ax_b = (self.a as u128) * (x as u128) + self.b as u128;
        mod_p(ax_b) % range
    }

    /// Evaluate the function on an ordered pair by folding `x` through the
    /// field first and re-evaluating on the folded key xor `y`. Used to
    /// probe host-side pair tables (e.g. [`PairSet`]); exact keys are
    /// compared on probe, so only distribution quality — not independence —
    /// matters here.
    #[inline]
    pub fn eval_pair(&self, x: u64, y: u64) -> u64 {
        let fx = mod_p((self.a as u128) * (x as u128) + self.b as u128);
        let k = fx ^ y.rotate_left(31);
        mod_p((self.a as u128) * (k as u128) + self.b as u128) % self.range
    }

    /// The output range.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The two words a processor reads to know the function.
    #[inline]
    pub fn words(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

/// A host-side exact set of ordered `(u64, u64)` pairs, open-addressed
/// with a [`PairwiseHash`]-driven probe sequence.
///
/// Built for the live-arc dedup of the Theorem-3 scheduler: after ALTER
/// maps many arcs onto the same root pair, the controller collapses
/// duplicates so simulated steps pay for *distinct* live arcs only. The
/// set is rebuilt per use, sized to the live count (so the dedup itself is
/// O(live), never O(m)), and fully deterministic: insertion order plus a
/// fixed seed decide the layout, and membership is decided by exact key
/// comparison — the hash only picks probe start points.
///
/// # Example
///
/// ```
/// use pram_kit::hashing::PairSet;
///
/// let mut seen = PairSet::with_capacity(42, 4);
/// assert!(seen.insert(3, 7)); // fresh pair
/// assert!(!seen.insert(3, 7)); // exact duplicate: rejected
/// assert!(seen.insert(7, 3)); // pairs are ordered: (7,3) is distinct
/// assert_eq!(seen.len(), 2);
/// ```
pub struct PairSet {
    slots: Vec<(u64, u64)>,
    mask: usize,
    len: usize,
    h: PairwiseHash,
}

/// Empty-slot sentinel; `(NULL, NULL)` is never a valid arc (a vertex id
/// is always `< 2^61`).
const EMPTY_PAIR: (u64, u64) = (u64::MAX, u64::MAX);

impl PairSet {
    /// A set expecting about `items` insertions (load factor ≤ 1/2).
    pub fn with_capacity(seed: u64, items: usize) -> Self {
        let cap = (items.max(2) * 2).next_power_of_two();
        PairSet {
            slots: vec![EMPTY_PAIR; cap],
            mask: cap - 1,
            len: 0,
            h: PairwiseHash::new(seed, u64::MAX),
        }
    }

    /// Insert an ordered pair; returns `true` iff it was not yet present.
    pub fn insert(&mut self, a: u64, b: u64) -> bool {
        debug_assert!((a, b) != EMPTY_PAIR, "sentinel pair inserted");
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut i = self.h.eval_pair(a, b) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY_PAIR {
                self.slots[i] = (a, b);
                self.len += 1;
                return true;
            }
            if s == (a, b) {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Number of distinct pairs inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_PAIR; (self.mask + 1) * 2]);
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for (a, b) in old {
            if (a, b) != EMPTY_PAIR {
                self.insert(a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_p_matches_u128_remainder() {
        let cases = [
            0u128,
            1,
            P as u128,
            P as u128 + 1,
            (P as u128) * (P as u128),
            u128::MAX >> 6,
        ];
        for &x in &cases {
            assert_eq!(mod_p(x) as u128, x % P as u128, "x={x}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let h1 = PairwiseHash::new(5, 64);
        let h2 = PairwiseHash::new(5, 64);
        let h3 = PairwiseHash::new(6, 64);
        for x in 0..100 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
        assert!((0..100).any(|x| h1.eval(x) != h3.eval(x)));
    }

    #[test]
    fn output_in_range() {
        let h = PairwiseHash::new(9, 17);
        for x in 0..10_000u64 {
            assert!(h.eval(x) < 17);
        }
    }

    #[test]
    fn marginal_uniformity() {
        // Each bucket of [0, K) should receive ≈ N/K of N consecutive keys,
        // averaged over functions.
        let k = 32u64;
        let n = 4_000u64;
        let mut counts = vec![0u64; k as usize];
        let fns = 8;
        for seed in 0..fns {
            let h = PairwiseHash::new(seed, k);
            for x in 0..n {
                counts[h.eval(x) as usize] += 1;
            }
        }
        let expect = (n * fns) as f64 / k as f64;
        for &c in &counts {
            assert!(
                (c as f64) > 0.8 * expect && (c as f64) < 1.2 * expect,
                "bucket count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn pairwise_collision_rate_close_to_1_over_k() {
        // Empirical check of the 1/K collision bound: fix x ≠ y, draw many
        // functions, count h(x)=h(y).
        let k = 16u64;
        let trials = 40_000u64;
        let mut collisions = 0u64;
        for seed in 0..trials {
            let h = PairwiseHash::new(seed.wrapping_mul(0xABCD_1234), k);
            if h.eval(12345) == h.eval(67890) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expect = 1.0 / k as f64;
        assert!(
            (rate - expect).abs() < 0.015,
            "collision rate {rate}, expected ≈ {expect}"
        );
    }

    #[test]
    fn pair_set_dedups_exactly() {
        let mut s = PairSet::with_capacity(11, 4);
        assert!(s.insert(3, 7));
        assert!(s.insert(7, 3)); // ordered pairs are distinct
        assert!(!s.insert(3, 7));
        assert!(s.insert(3, 8));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn pair_set_grows_past_initial_capacity() {
        let mut s = PairSet::with_capacity(5, 2);
        let mut fresh = 0;
        for a in 0..200u64 {
            for b in 0..5u64 {
                if s.insert(a, b) {
                    fresh += 1;
                }
            }
        }
        assert_eq!(fresh, 1000);
        assert_eq!(s.len(), 1000);
        // Re-insertion after growth still detects duplicates.
        assert!(!s.insert(123, 4));
    }

    #[test]
    fn pair_set_is_deterministic_in_seed() {
        let collect = |seed: u64| {
            let mut s = PairSet::with_capacity(seed, 8);
            (0..100u64)
                .map(|x| s.insert(x % 10, x % 7))
                .collect::<Vec<bool>>()
        };
        assert_eq!(collect(9), collect(9));
    }

    #[test]
    fn eval_pair_spreads_pairs() {
        // Not a pairwise-independence claim — just that the pair fold does
        // not collapse structured inputs onto few probe starts.
        let h = PairwiseHash::new(3, 1 << 20);
        let mut seen = std::collections::HashSet::new();
        for a in 0..64u64 {
            for b in 0..64u64 {
                seen.insert(h.eval_pair(a, b));
            }
        }
        assert!(
            seen.len() > 3500,
            "only {} distinct probe starts",
            seen.len()
        );
    }

    #[test]
    fn eval_range_consistent_with_words() {
        let h = PairwiseHash::new(77, 8);
        let (a, b) = h.words();
        // Recompute by hand for a couple of inputs.
        for x in [0u64, 1, 999_999] {
            let ax_b = (a as u128) * (x as u128) + b as u128;
            let expect = (ax_b % P as u128) as u64 % 8;
            assert_eq!(h.eval(x), expect);
            assert_eq!(h.eval_range(x, 8), expect);
        }
    }
}
